package grammar

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Generator realises concrete query sentences from a grammar: it picks
// templates and injects lexical literals, honouring the literal-once rule
// and optional dialect restrictions.
type Generator struct {
	grammar *Grammar
	norm    *Grammar
	enum    *Enumeration
	classes map[string][]Literal
	rng     *rand.Rand
	dialect string
}

// GeneratorOptions configure a Generator.
type GeneratorOptions struct {
	// Dialect selects dialect-tagged literals; untagged literals are always
	// eligible. Empty means "generic dialect only".
	Dialect string
	// Seed seeds the deterministic random source. A zero seed is replaced
	// with 1 so generators are reproducible by default.
	Seed int64
	// Enumerate are the options used to build the template set.
	Enumerate EnumerateOptions
}

// NewGenerator builds a generator for the grammar. The grammar is validated,
// normalised and enumerated once up front.
func NewGenerator(g *Grammar, opts GeneratorOptions) (*Generator, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Enumerate == (EnumerateOptions{}) {
		opts.Enumerate = DefaultEnumerateOptions()
	}
	norm, err := g.Normalize()
	if err != nil {
		return nil, err
	}
	enum, err := g.Enumerate(opts.Enumerate)
	if err != nil {
		return nil, err
	}
	gen := &Generator{
		grammar: g,
		norm:    norm,
		enum:    enum,
		classes: map[string][]Literal{},
		rng:     rand.New(rand.NewSource(opts.Seed)),
		dialect: strings.ToLower(opts.Dialect),
	}
	for _, r := range norm.LexicalRules() {
		for _, lit := range r.Literals() {
			if lit.Dialect == "" || lit.Dialect == gen.dialect {
				gen.classes[r.Name] = append(gen.classes[r.Name], lit)
			}
		}
	}
	return gen, nil
}

// Templates exposes the enumerated template set.
func (g *Generator) Templates() []*Template { return g.enum.Templates }

// Enumeration exposes the full enumeration result.
func (g *Generator) Enumeration() *Enumeration { return g.enum }

// Sentence is a generated concrete query together with its provenance.
type Sentence struct {
	// SQL is the rendered query text.
	SQL string
	// Template is the template the sentence was realised from.
	Template *Template
	// Literals maps each lexical class to the literal lines chosen, in the
	// order they were injected.
	Literals map[string][]Literal
}

// Components returns the number of lexical components in the sentence,
// matching the node-size metric of the paper's experiment-history figure.
func (s *Sentence) Components() int {
	n := 0
	for _, lits := range s.Literals {
		n += len(lits)
	}
	return n
}

// Key is a canonical identity for deduplication: the template signature plus
// the sorted set of literal lines per class (order within a class is
// irrelevant, matching the paper's order-insensitive treatment).
func (s *Sentence) Key() string {
	classes := make([]string, 0, len(s.Literals))
	for c := range s.Literals {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var sb strings.Builder
	sb.WriteString(s.Template.Signature())
	for _, c := range classes {
		lines := make([]int, 0, len(s.Literals[c]))
		for _, l := range s.Literals[c] {
			lines = append(lines, l.Line)
		}
		sort.Ints(lines)
		fmt.Fprintf(&sb, "|%s:%v", c, lines)
	}
	return sb.String()
}

// RandomTemplate picks a template uniformly at random.
func (g *Generator) RandomTemplate() *Template {
	if len(g.enum.Templates) == 0 {
		return nil
	}
	return g.enum.Templates[g.rng.Intn(len(g.enum.Templates))]
}

// Baseline realises the "largest" template — the one with the most lexical
// components — choosing the first literal of every class deterministically.
// When a baseline query was converted into the grammar, this reconstructs a
// query equivalent to it (modulo normalised ordering).
func (g *Generator) Baseline() (*Sentence, error) {
	if len(g.enum.Templates) == 0 {
		return nil, fmt.Errorf("grammar yields no templates")
	}
	best := g.enum.Templates[0]
	for _, t := range g.enum.Templates {
		if t.Size() > best.Size() {
			best = t
		}
	}
	return g.realize(best, false)
}

// Generate realises a random sentence from a random template.
func (g *Generator) Generate() (*Sentence, error) {
	tpl := g.RandomTemplate()
	if tpl == nil {
		return nil, fmt.Errorf("grammar yields no templates")
	}
	return g.realize(tpl, true)
}

// GenerateFromTemplate realises a random sentence from a specific template.
func (g *Generator) GenerateFromTemplate(tpl *Template) (*Sentence, error) {
	return g.realize(tpl, true)
}

// realize injects literals into a template. When random is false the first
// literals of each class are used in order (deterministic realisation).
func (g *Generator) realize(tpl *Template, random bool) (*Sentence, error) {
	// Build per-class pools and verify capacity.
	pools := map[string][]Literal{}
	for class, occ := range tpl.Counts {
		avail := g.classes[class]
		if occ > len(avail) {
			return nil, fmt.Errorf("template needs %d literals of class %q, grammar offers %d (dialect %q)",
				occ, class, len(avail), g.dialect)
		}
		pool := append([]Literal(nil), avail...)
		if random {
			g.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		}
		pools[class] = pool
	}
	sent := &Sentence{Template: tpl, Literals: map[string][]Literal{}}
	var parts []string
	used := map[string]int{}
	for _, e := range tpl.Elements {
		if !e.IsRef() {
			parts = append(parts, e.Text)
			continue
		}
		idx := used[e.Ref]
		used[e.Ref]++
		lit := pools[e.Ref][idx]
		sent.Literals[e.Ref] = append(sent.Literals[e.Ref], lit)
		parts = append(parts, lit.Text)
	}
	sent.SQL = JoinSQL(parts)
	return sent, nil
}

// Realizations enumerates every concrete sentence of a template (respecting
// the literal-once rule and ignoring order within a class), up to limit
// sentences. A limit of zero means no limit. It is used by exhaustive small
// projects and by tests.
func (g *Generator) Realizations(tpl *Template, limit int) ([]*Sentence, error) {
	classes := make([]string, 0, len(tpl.Counts))
	for c := range tpl.Counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		if tpl.Counts[c] > len(g.classes[c]) {
			return nil, fmt.Errorf("template needs %d literals of class %q, grammar offers %d",
				tpl.Counts[c], c, len(g.classes[c]))
		}
	}
	// Enumerate combinations per class and take the cartesian product.
	perClass := make([][][]Literal, len(classes))
	for i, c := range classes {
		perClass[i] = combinations(g.classes[c], tpl.Counts[c])
	}
	var out []*Sentence
	var walk func(i int, chosen map[string][]Literal) bool
	walk = func(i int, chosen map[string][]Literal) bool {
		if i == len(classes) {
			sent := g.materialize(tpl, chosen)
			out = append(out, sent)
			return limit == 0 || len(out) < limit
		}
		for _, combo := range perClass[i] {
			chosen[classes[i]] = combo
			if !walk(i+1, chosen) {
				return false
			}
		}
		return true
	}
	walk(0, map[string][]Literal{})
	return out, nil
}

// ClassLiterals returns the literals available to this generator (honouring
// its dialect) for the given lexical class.
func (g *Generator) ClassLiterals(class string) []Literal {
	return append([]Literal(nil), g.classes[class]...)
}

// Materialize renders a template given an explicit literal choice per class;
// the number of literals provided for each class must match the template's
// occurrence counts. It is the hook the query-pool morphing strategies use
// to build precise variants (swap one literal, add one, drop one).
func (g *Generator) Materialize(tpl *Template, chosen map[string][]Literal) (*Sentence, error) {
	for class, occ := range tpl.Counts {
		if len(chosen[class]) != occ {
			return nil, fmt.Errorf("template needs %d literals of class %q, got %d", occ, class, len(chosen[class]))
		}
	}
	return g.materialize(tpl, chosen), nil
}

// materialize renders a template given an explicit literal choice per class.
func (g *Generator) materialize(tpl *Template, chosen map[string][]Literal) *Sentence {
	sent := &Sentence{Template: tpl, Literals: map[string][]Literal{}}
	var parts []string
	used := map[string]int{}
	for _, e := range tpl.Elements {
		if !e.IsRef() {
			parts = append(parts, e.Text)
			continue
		}
		idx := used[e.Ref]
		used[e.Ref]++
		lit := chosen[e.Ref][idx]
		sent.Literals[e.Ref] = append(sent.Literals[e.Ref], lit)
		parts = append(parts, lit.Text)
	}
	sent.SQL = JoinSQL(parts)
	return sent
}

// combinations returns all k-subsets of lits, preserving order within each
// subset.
func combinations(lits []Literal, k int) [][]Literal {
	if k == 0 {
		return [][]Literal{nil}
	}
	if k > len(lits) {
		return nil
	}
	var out [][]Literal
	var rec func(start int, cur []Literal)
	rec = func(start int, cur []Literal) {
		if len(cur) == k {
			out = append(out, append([]Literal(nil), cur...))
			return
		}
		for i := start; i < len(lits); i++ {
			rec(i+1, append(cur, lits[i]))
		}
	}
	rec(0, nil)
	return out
}

// JoinSQL joins query fragments with single spaces and fixes the spacing
// artefacts that naive joining produces (space before commas and closing
// parentheses, space after opening parentheses).
func JoinSQL(parts []string) string {
	joined := strings.Join(parts, " ")
	joined = strings.Join(strings.Fields(joined), " ")
	joined = strings.ReplaceAll(joined, " ,", ",")
	joined = strings.ReplaceAll(joined, "( ", "(")
	joined = strings.ReplaceAll(joined, " )", ")")
	return strings.TrimSpace(joined)
}
