package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sqalpel/internal/plan"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/trace"
)

// Mode selects the execution strategy of the executor.
type Mode int

// Execution modes.
const (
	// ModeRow is tuple-at-a-time execution: full-width scans, short-circuit
	// predicate evaluation, no intermediate materialisation, early exit on
	// LIMIT.
	ModeRow Mode = iota
	// ModeColumn is column-at-a-time execution: column pruning, one filter
	// pass per conjunct, materialised arithmetic intermediates with
	// overflow-guarding casts.
	ModeColumn
)

// Stats collects execution counters; they feed the open-ended key/value list
// the driver reports back to the platform.
type Stats struct {
	RowsScanned               int64
	TuplesMaterialized        int64
	IntermediatesMaterialized int64
	GuardCasts                int64
	FilterPasses              int64
	HashJoins                 int64
	// JoinBuildRows and JoinProbeRows count the non-NULL-key rows inserted
	// into and probed against hash-join tables (NULL keys can never match
	// and are skipped on both sides).
	JoinBuildRows      int64
	JoinProbeRows      int64
	LoopJoins          int64
	SubqueryExecutions int64
	Groups             int64
	// AggRows counts the rows folded into aggregation groups.
	AggRows      int64
	RowsReturned int64
	// Batches counts the fixed-size batches processed by the vectorized
	// engine; the interpreters always report zero.
	Batches int64
	// BlocksSkipped counts zone-map blocks a scan proved unsatisfiable
	// under its pushed-down predicates and never read; only the typed
	// engines (vectorized and compiled) can report a non-zero count.
	BlocksSkipped int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RowsScanned += other.RowsScanned
	s.TuplesMaterialized += other.TuplesMaterialized
	s.IntermediatesMaterialized += other.IntermediatesMaterialized
	s.GuardCasts += other.GuardCasts
	s.FilterPasses += other.FilterPasses
	s.HashJoins += other.HashJoins
	s.JoinBuildRows += other.JoinBuildRows
	s.JoinProbeRows += other.JoinProbeRows
	s.LoopJoins += other.LoopJoins
	s.SubqueryExecutions += other.SubqueryExecutions
	s.Groups += other.Groups
	s.AggRows += other.AggRows
	s.RowsReturned += other.RowsReturned
	s.Batches += other.Batches
	s.BlocksSkipped += other.BlocksSkipped
}

// Map renders the stats as the key/value list reported to the platform.
func (s Stats) Map() map[string]int64 {
	return map[string]int64{
		"rows_scanned":               s.RowsScanned,
		"tuples_materialized":        s.TuplesMaterialized,
		"intermediates_materialized": s.IntermediatesMaterialized,
		"guard_casts":                s.GuardCasts,
		"filter_passes":              s.FilterPasses,
		"hash_joins":                 s.HashJoins,
		"join_build_rows":            s.JoinBuildRows,
		"join_probe_rows":            s.JoinProbeRows,
		"loop_joins":                 s.LoopJoins,
		"subquery_executions":        s.SubqueryExecutions,
		"groups":                     s.Groups,
		"agg_rows":                   s.AggRows,
		"rows_returned":              s.RowsReturned,
		"batches":                    s.Batches,
		"blocks_skipped":             s.BlocksSkipped,
	}
}

// executionLimits guard against runaway queries: generated query variants
// may drop join predicates and explode; the executor turns those into
// errors, matching the error entries of the paper's experiment history.
type executionLimits struct {
	maxJoinRows int
	deadline    time.Time
}

const defaultMaxJoinRows = 4_000_000

// executor runs one planned statement against a database. The logical plan
// (internal/plan) carries all front-end analysis — resolved FROM inputs,
// join order, classified conjuncts, sub-query correlation, pruning sets —
// so the executor walks plan nodes instead of re-analyzing the AST.
type executor struct {
	db     *Database
	mode   Mode
	stats  *Stats
	limits executionLimits
	// guardCasts toggles the overflow-guard widening pass of ModeColumn;
	// disabling it models a newer engine version that removed the cost.
	guardCasts bool
	// plan is the shared logical plan of the statement being executed.
	plan *plan.Plan
	// tracer collects per-operator spans keyed by the plan's operator ids;
	// nil when tracing is off. subPrefix maps nested sub-query statements to
	// their operator-id prefixes (see trace.SubqueryPrefixes) and is only
	// populated when tracing.
	tracer    *trace.Tracer
	subPrefix map[*sqlparser.SelectStatement]string

	uncorrCache  map[*sqlparser.SelectStatement]*relation
	uncorrSets   map[*sqlparser.SelectStatement]subquerySetEntry
	deadlineTick int
}

// untracedPrefix marks execution contexts without an operator id — the
// operands of explicit JOIN trees (traced as one input operator) and nested
// statements the prefix walk does not enumerate. Span emission is skipped
// under it.
const untracedPrefix = "\x00"

// traced reports whether spans should be emitted for the given prefix.
func (ex *executor) traced(prefix string) bool {
	return ex.tracer != nil && prefix != untracedPrefix
}

func newExecutor(db *Database, mode Mode, limits executionLimits, guardCasts bool, p *plan.Plan) *executor {
	if limits.maxJoinRows == 0 {
		limits.maxJoinRows = defaultMaxJoinRows
	}
	return &executor{
		db:          db,
		mode:        mode,
		stats:       &Stats{},
		limits:      limits,
		guardCasts:  guardCasts,
		plan:        p,
		uncorrCache: map[*sqlparser.SelectStatement]*relation{},
		uncorrSets:  map[*sqlparser.SelectStatement]subquerySetEntry{},
	}
}

// checkDeadline returns an error when the execution deadline has passed; it
// only consults the clock every few hundred calls to stay cheap.
func (ex *executor) checkDeadline() error {
	if ex.limits.deadline.IsZero() {
		return nil
	}
	ex.deadlineTick++
	if ex.deadlineTick%512 != 0 {
		return nil
	}
	if time.Now().After(ex.limits.deadline) {
		return fmt.Errorf("query exceeded its time budget")
	}
	return nil
}

// executeSubquery runs a nested select through its pre-built plan;
// uncorrelated sub-queries (classified at plan time) are executed once and
// cached.
func (ex *executor) executeSubquery(stmt *sqlparser.SelectStatement, outer *scope) (*relation, error) {
	ex.stats.SubqueryExecutions++
	sub := ex.plan.Sub(stmt)
	if sub == nil {
		return nil, fmt.Errorf("internal: sub-query has no plan")
	}
	// The prefix walk assigns this statement its operator id; statements it
	// does not enumerate (inside explicit JOIN trees) run untraced.
	prefix := untracedPrefix
	var sp *trace.Span
	if ex.tracer != nil {
		if p, ok := ex.subPrefix[stmt]; ok {
			prefix = p
			sp = ex.tracer.Span(trace.SubOpID(p), trace.KindSubquery)
		}
	}
	if !ex.plan.Correlated(stmt) {
		if rel, ok := ex.uncorrCache[stmt]; ok {
			if sp != nil {
				// A cache hit costs no re-execution; only the call counts.
				sp.Calls++
			}
			return rel, nil
		}
		tm := sp.Start()
		rel, err := ex.executeSelect(sub, nil, prefix)
		if err != nil {
			return nil, err
		}
		tm.Done(int64(rel.numRows()))
		ex.uncorrCache[stmt] = rel
		return rel, nil
	}
	tm := sp.Start()
	rel, err := ex.executeSelect(sub, outer, prefix)
	if err != nil {
		return nil, err
	}
	tm.Done(int64(rel.numRows()))
	return rel, nil
}

// subquerySetEntry caches an IN sub-query's value set together with its
// NULL flag — the pair is inseparable: ternary IN needs to know whether a
// probe missed a NULL-bearing set (UNKNOWN) or a clean one (FALSE).
type subquerySetEntry struct {
	set     map[string]bool
	hasNull bool
}

// subquerySet returns the set of non-NULL first-column values produced by
// an IN sub-query plus whether the column contained any NULL — ternary IN
// needs that flag: a probe that misses a NULL-bearing set is UNKNOWN, not
// FALSE. Cached for uncorrelated sub-queries.
func (ex *executor) subquerySet(stmt *sqlparser.SelectStatement, outer *scope) (map[string]bool, bool, error) {
	if !ex.plan.Correlated(stmt) {
		if entry, ok := ex.uncorrSets[stmt]; ok {
			return entry.set, entry.hasNull, nil
		}
	}
	rel, err := ex.executeSubquery(stmt, outer)
	if err != nil {
		return nil, false, err
	}
	entry := subquerySetEntry{set: map[string]bool{}}
	if len(rel.cols) > 0 {
		for _, v := range rel.cols[0].vals {
			if v.IsNull() {
				entry.hasNull = true
			} else {
				entry.set[v.Key()] = true
			}
		}
	}
	if !ex.plan.Correlated(stmt) {
		ex.uncorrSets[stmt] = entry
	}
	return entry.set, entry.hasNull, nil
}

// executeSelect is the top of the interpreter: it runs one planned SELECT
// and folds its set-operation continuations in. prefix keys the statement's
// operator spans (empty at the root, untracedPrefix to disable).
func (ex *executor) executeSelect(sp *plan.Select, outer *scope, prefix string) (*relation, error) {
	rel, err := ex.executeSelectCore(sp, outer, prefix)
	if err != nil {
		return nil, err
	}
	// Set operations chain on the plan, mirroring the statement chain.
	j := 1
	for cur := sp; cur.SetNext != nil; cur = cur.SetNext {
		branchPrefix := untracedPrefix
		if ex.traced(prefix) {
			branchPrefix = trace.SetPrefix(prefix, j)
		}
		right, err := ex.executeSelectCore(cur.SetNext, outer, branchPrefix)
		if err != nil {
			return nil, err
		}
		var tm trace.Timer
		if ex.traced(prefix) {
			tm = ex.tracer.Span(trace.SetID(prefix, j), trace.KindSet).Start()
		}
		rel, err = applySetOp(cur.Stmt.SetOp, rel, right)
		if err != nil {
			return nil, err
		}
		tm.Done(int64(rel.numRows()))
		j++
	}
	return rel, nil
}

func applySetOp(op string, left, right *relation) (*relation, error) {
	if len(left.cols) != len(right.cols) {
		return nil, fmt.Errorf("set operation requires matching column counts (%d vs %d)", len(left.cols), len(right.cols))
	}
	rowKey := func(r *relation, i int) string {
		var sb strings.Builder
		for _, c := range r.cols {
			sb.WriteString(c.vals[i].Key())
			sb.WriteByte('|')
		}
		return sb.String()
	}
	switch op {
	case "UNION ALL":
		out := left.selectRows(allRows(left.numRows()))
		for i := 0; i < right.numRows(); i++ {
			for ci, c := range out.cols {
				c.vals = append(c.vals, right.cols[ci].vals[i])
			}
			out.n++
		}
		return out, nil
	case "UNION":
		seen := map[string]bool{}
		var keep []int
		for i := 0; i < left.numRows(); i++ {
			k := rowKey(left, i)
			if !seen[k] {
				seen[k] = true
				keep = append(keep, i)
			}
		}
		out := left.selectRows(keep)
		for i := 0; i < right.numRows(); i++ {
			k := rowKey(right, i)
			if !seen[k] {
				seen[k] = true
				for ci, c := range out.cols {
					c.vals = append(c.vals, right.cols[ci].vals[i])
				}
				out.n++
			}
		}
		return out, nil
	case "EXCEPT", "INTERSECT":
		rightKeys := map[string]bool{}
		for i := 0; i < right.numRows(); i++ {
			rightKeys[rowKey(right, i)] = true
		}
		var keep []int
		seen := map[string]bool{}
		for i := 0; i < left.numRows(); i++ {
			k := rowKey(left, i)
			if seen[k] {
				continue
			}
			seen[k] = true
			inRight := rightKeys[k]
			if (op == "EXCEPT" && !inRight) || (op == "INTERSECT" && inRight) {
				keep = append(keep, i)
			}
		}
		return left.selectRows(keep), nil
	default:
		return nil, fmt.Errorf("unknown set operation %q", op)
	}
}

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (ex *executor) executeSelectCore(sp *plan.Select, outer *scope, prefix string) (*relation, error) {
	stmt := sp.Stmt
	if len(stmt.Projection) == 0 {
		return nil, fmt.Errorf("query has no projection")
	}

	// FROM inputs + precomputed join order.
	input, err := ex.buildFrom(sp, outer, prefix)
	if err != nil {
		return nil, err
	}

	// Early-exit opportunity for the row engine: plain scans with LIMIT and
	// no ordering can stop as soon as enough rows qualified.
	earlyLimit := 0
	if ex.mode == ModeRow {
		earlyLimit = sp.EarlyLimit
	}

	var tm trace.Timer
	if ex.traced(prefix) && len(sp.Residual) > 0 {
		tm = ex.tracer.Span(trace.FilterID(prefix), trace.KindFilter).Start()
	}
	filtered, err := ex.applyFilter(input, sp.Residual, outer, earlyLimit)
	if err != nil {
		return nil, err
	}
	tm.Done(int64(filtered.numRows()))

	var out *relation
	var sortKeys [][]Value
	if sp.Grouped {
		out, sortKeys, err = ex.projectGrouped(stmt, filtered, outer, prefix)
	} else {
		tm = trace.Timer{}
		if ex.traced(prefix) {
			tm = ex.tracer.Span(trace.ProjectID(prefix), trace.KindProject).Start()
		}
		out, sortKeys, err = ex.projectRows(stmt, filtered, outer)
		if err == nil {
			tm.Done(int64(out.numRows()))
		}
	}
	if err != nil {
		return nil, err
	}

	if stmt.Distinct {
		tm = trace.Timer{}
		if ex.traced(prefix) {
			tm = ex.tracer.Span(trace.DistinctID(prefix), trace.KindDistinct).Start()
		}
		out, sortKeys = distinctRows(out, sortKeys)
		tm.Done(int64(out.numRows()))
	}

	if len(stmt.OrderBy) > 0 {
		tm = trace.Timer{}
		if ex.traced(prefix) {
			tm = ex.tracer.Span(trace.SortID(prefix), trace.KindSort).Start()
		}
		out = sortRelation(out, sortKeys, stmt.OrderBy)
		tm.Done(int64(out.numRows()))
	}

	if stmt.Limit != nil || stmt.Offset != nil {
		tm = trace.Timer{}
		if ex.traced(prefix) {
			tm = ex.tracer.Span(trace.LimitID(prefix), trace.KindLimit).Start()
		}
		out = applyLimit(out, stmt.Limit, stmt.Offset)
		tm.Done(int64(out.numRows()))
	}
	ex.stats.RowsReturned += int64(out.numRows())
	return out, nil
}

// buildFrom materialises the planned FROM inputs and stitches them together
// following the plan's precomputed join order: hash joins over the extracted
// equi-join keys, cross products where no edge connects the inputs.
func (ex *executor) buildFrom(sp *plan.Select, outer *scope, prefix string) (*relation, error) {
	if len(sp.From) == 0 {
		// SELECT without FROM: a single empty row so expressions evaluate once.
		rel := newRelation()
		rel.n = 1
		return rel, nil
	}

	rels := make([]*relation, len(sp.From))
	for i, in := range sp.From {
		r, err := ex.buildInput(in, sp.Needed, outer, prefix, i)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}

	current := rels[0]
	for k, step := range sp.JoinSteps {
		var tm trace.Timer
		if ex.traced(prefix) {
			kind := trace.KindHashJoin
			if step.Cross {
				kind = trace.KindCross
			}
			tm = ex.tracer.Span(trace.JoinID(prefix, k), kind).Start()
		}
		var err error
		if step.Cross {
			current, err = ex.crossJoin(current, rels[step.Right])
		} else {
			current, err = ex.hashJoin(current, rels[step.Right], step.LeftKeys, step.RightKeys, outer)
		}
		if err != nil {
			return nil, err
		}
		tm.Done(int64(current.numRows()))
	}
	return current, nil
}

// buildInput materialises one planned FROM input. idx is the input's FROM
// position, keying its trace span; the operands of explicit JOIN trees run
// untraced (the whole tree is traced as one input operator).
func (ex *executor) buildInput(in *plan.Input, needed map[string]map[string]bool, outer *scope, prefix string, idx int) (*relation, error) {
	switch {
	case in.Join != nil:
		var tm trace.Timer
		if ex.traced(prefix) {
			tm = ex.tracer.Span(trace.InputID(prefix, idx), trace.KindJoinTree).Start()
		}
		rel, err := ex.buildJoin(in.Join, needed, outer)
		if err != nil {
			return nil, err
		}
		tm.Done(int64(rel.numRows()))
		return rel, nil
	case in.Derived != nil:
		derivedPrefix := untracedPrefix
		var tm trace.Timer
		if ex.traced(prefix) {
			derivedPrefix = trace.DerivedPrefix(prefix, idx)
			tm = ex.tracer.Span(trace.InputID(prefix, idx), trace.KindDerived).Start()
		}
		rel, err := ex.executeSelect(in.Derived, nil, derivedPrefix)
		if err != nil {
			return nil, err
		}
		if in.Alias != "" {
			rel.renameTables(in.Alias)
		}
		tm.Done(int64(rel.numRows()))
		return rel, nil
	default:
		table := ex.db.Table(in.Table)
		if table == nil {
			return nil, fmt.Errorf("unknown table %q", in.Table)
		}
		var tm trace.Timer
		if ex.traced(prefix) {
			tm = ex.tracer.Span(trace.ScanID(prefix, idx), trace.KindScan).Start()
		}
		var neededCols map[string]bool
		if ex.mode == ModeColumn {
			neededCols = needed[strings.ToLower(in.Alias)]
		}
		copyCols := ex.mode == ModeRow
		rel := tableRelation(table, in.Alias, neededCols, copyCols, ex.stats)
		tm.Done(int64(rel.numRows()))
		return rel, nil
	}
}

// buildJoin executes an explicit JOIN tree node whose ON condition the plan
// already classified into equi-join keys and residual predicates.
func (ex *executor) buildJoin(j *plan.Join, needed map[string]map[string]bool, outer *scope) (*relation, error) {
	left, err := ex.buildInput(j.Left, needed, outer, untracedPrefix, -1)
	if err != nil {
		return nil, err
	}
	right, err := ex.buildInput(j.Right, needed, outer, untracedPrefix, -1)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case "CROSS":
		return ex.crossJoin(left, right)
	case "INNER":
		if len(j.LeftKeys) == 0 {
			return ex.nestedLoopJoin(left, right, j.AllConds, outer)
		}
		joined, err := ex.hashJoin(left, right, j.LeftKeys, j.RightKeys, outer)
		if err != nil {
			return nil, err
		}
		if len(j.Residual) > 0 {
			return ex.applyFilter(joined, j.Residual, outer, 0)
		}
		return joined, nil
	case "LEFT":
		return ex.leftOuterJoin(left, right, j, outer)
	default:
		return nil, fmt.Errorf("unsupported join kind %q", j.Kind)
	}
}

// hashJoin joins left and right on the given key expression lists.
func (ex *executor) hashJoin(left, right *relation, leftKeys, rightKeys []sqlparser.Expr, outer *scope) (*relation, error) {
	ex.stats.HashJoins++
	// Build on the smaller side.
	build, probe := right, left
	buildKeys, probeKeys := rightKeys, leftKeys
	swapped := false
	if left.numRows() < right.numRows() {
		build, probe = left, right
		buildKeys, probeKeys = leftKeys, rightKeys
		swapped = true
	}
	ht := map[string][]int{}
	bev := &evaluator{ex: ex, sc: &scope{rel: build, outer: outer}}
	for i := 0; i < build.numRows(); i++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		bev.sc.row = i
		key, hasNull, err := joinKey(bev, buildKeys)
		if err != nil {
			return nil, err
		}
		if hasNull {
			// NULL = anything is UNKNOWN: the row cannot match.
			continue
		}
		ex.stats.JoinBuildRows++
		ht[key] = append(ht[key], i)
	}
	var probeIdx, buildIdx []int
	pev := &evaluator{ex: ex, sc: &scope{rel: probe, outer: outer}}
	for i := 0; i < probe.numRows(); i++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		pev.sc.row = i
		key, hasNull, err := joinKey(pev, probeKeys)
		if err != nil {
			return nil, err
		}
		if hasNull {
			continue
		}
		ex.stats.JoinProbeRows++
		for _, bi := range ht[key] {
			probeIdx = append(probeIdx, i)
			buildIdx = append(buildIdx, bi)
			if len(probeIdx) > ex.limits.maxJoinRows {
				return nil, fmt.Errorf("join result exceeds %d rows", ex.limits.maxJoinRows)
			}
		}
	}
	var leftIdx, rightIdx []int
	if swapped {
		leftIdx, rightIdx = buildIdx, probeIdx
	} else {
		leftIdx, rightIdx = probeIdx, buildIdx
	}
	out := left.selectRows(leftIdx)
	out.appendColumns(right.selectRows(rightIdx).cols)
	return out, nil
}

// joinKey encodes the equi-join key values of the current row. hasNull
// reports a NULL among the key values: per the ternary contract
// (internal/sqlsem) an equality with a NULL operand is UNKNOWN, so such
// rows can never satisfy the join condition — callers must skip them
// instead of letting NULL keys bucket together.
func joinKey(ev *evaluator, keys []sqlparser.Expr) (key string, hasNull bool, err error) {
	var sb strings.Builder
	for _, k := range keys {
		v, err := ev.eval(k)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			hasNull = true
		}
		sb.WriteString(v.Key())
		sb.WriteByte('|')
	}
	return sb.String(), hasNull, nil
}

// crossJoin builds the cartesian product, guarded by the join-size limit.
func (ex *executor) crossJoin(left, right *relation) (*relation, error) {
	ex.stats.LoopJoins++
	total := left.numRows() * right.numRows()
	if total > ex.limits.maxJoinRows {
		return nil, fmt.Errorf("cross product of %d x %d rows exceeds the %d row limit",
			left.numRows(), right.numRows(), ex.limits.maxJoinRows)
	}
	leftIdx := make([]int, 0, total)
	rightIdx := make([]int, 0, total)
	for i := 0; i < left.numRows(); i++ {
		for j := 0; j < right.numRows(); j++ {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, j)
		}
	}
	out := left.selectRows(leftIdx)
	out.appendColumns(right.selectRows(rightIdx).cols)
	return out, nil
}

// nestedLoopJoin joins with an arbitrary condition.
func (ex *executor) nestedLoopJoin(left, right *relation, conds []sqlparser.Expr, outer *scope) (*relation, error) {
	ex.stats.LoopJoins++
	joined, err := ex.crossJoin(left, right)
	if err != nil {
		return nil, err
	}
	return ex.applyFilter(joined, conds, outer, 0)
}

// leftOuterJoin implements LEFT [OUTER] JOIN with the ON condition applied
// as part of the match (so non-matching left rows survive null-extended).
// The equi keys and residual predicates come pre-classified from the plan.
func (ex *executor) leftOuterJoin(left, right *relation, j *plan.Join, outer *scope) (*relation, error) {
	leftKeys, rightKeys, residual := j.LeftKeys, j.RightKeys, j.Residual
	// Hash the right side by the equi keys (or a single bucket when none).
	ht := map[string][]int{}
	rev := &evaluator{ex: ex, sc: &scope{rel: right, outer: outer}}
	for i := 0; i < right.numRows(); i++ {
		rev.sc.row = i
		key := ""
		if len(rightKeys) > 0 {
			k, hasNull, err := joinKey(rev, rightKeys)
			if err != nil {
				return nil, err
			}
			if hasNull {
				// NULL = anything is UNKNOWN: the row cannot match.
				continue
			}
			key = k
		}
		ex.stats.JoinBuildRows++
		ht[key] = append(ht[key], i)
	}
	ex.stats.HashJoins++

	var leftIdx, rightIdx []int // rightIdx -1 means null-extended
	lev := &evaluator{ex: ex, sc: &scope{rel: left, outer: outer}}
	for i := 0; i < left.numRows(); i++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		ex.stats.JoinProbeRows++
		lev.sc.row = i
		key := ""
		keyNull := false
		if len(leftKeys) > 0 {
			k, hasNull, err := joinKey(lev, leftKeys)
			if err != nil {
				return nil, err
			}
			key, keyNull = k, hasNull
		}
		matched := false
		candidates := ht[key]
		if keyNull {
			// A NULL key never matches; the left row survives
			// null-extended below, per LEFT JOIN semantics.
			candidates = nil
		}
		for _, ri := range candidates {
			ok := true
			if len(residual) > 0 {
				// Evaluate residual conditions over the combined row.
				pair := pairScope(left, i, right, ri, outer)
				pev := &evaluator{ex: ex, sc: pair}
				for _, c := range residual {
					v, err := pev.eval(c)
					if err != nil {
						return nil, err
					}
					//lint:nullsafe consumer collapse: ON-clause residuals reject UNKNOWN rows, per SQL join semantics
					if !v.Bool() {
						ok = false
						break
					}
				}
			}
			if ok {
				matched = true
				leftIdx = append(leftIdx, i)
				rightIdx = append(rightIdx, ri)
			}
		}
		if !matched {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, -1)
		}
	}

	out := left.selectRows(leftIdx)
	rightPart := &relation{n: len(rightIdx)}
	for _, c := range right.cols {
		vals := make([]Value, len(rightIdx))
		for i, ri := range rightIdx {
			if ri < 0 {
				vals[i] = Null()
			} else {
				vals[i] = c.vals[ri]
			}
		}
		rightPart.cols = append(rightPart.cols, &relColumn{table: c.table, name: c.name, vals: vals})
	}
	out.appendColumns(rightPart.cols)
	return out, nil
}

// pairScope builds a temporary scope exposing one row of the left relation
// and one row of the right relation simultaneously.
func pairScope(left *relation, li int, right *relation, ri int, outer *scope) *scope {
	pair := &relation{n: 1}
	for _, c := range left.cols {
		pair.cols = append(pair.cols, &relColumn{table: c.table, name: c.name, vals: []Value{c.vals[li]}})
	}
	for _, c := range right.cols {
		pair.cols = append(pair.cols, &relColumn{table: c.table, name: c.name, vals: []Value{c.vals[ri]}})
	}
	return &scope{rel: pair, row: 0, outer: outer}
}

// applyFilter filters the relation with the given conjuncts. The row engine
// evaluates all conjuncts per row with short-circuiting (and can stop early
// for LIMIT queries); the column engine makes one pass per conjunct,
// shrinking the selection vector each time.
func (ex *executor) applyFilter(rel *relation, conjuncts []sqlparser.Expr, outer *scope, earlyLimit int) (*relation, error) {
	if len(conjuncts) == 0 {
		return rel, nil
	}
	if ex.mode == ModeColumn {
		selection := allRows(rel.numRows())
		ev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}}
		for _, c := range conjuncts {
			ex.stats.FilterPasses++
			var next []int
			for _, ri := range selection {
				if err := ex.checkDeadline(); err != nil {
					return nil, err
				}
				ev.sc.row = ri
				v, err := ev.eval(c)
				if err != nil {
					return nil, err
				}
				if v.Bool() {
					next = append(next, ri)
				}
			}
			selection = next
			if len(selection) == 0 {
				break
			}
		}
		ex.stats.IntermediatesMaterialized += int64(len(selection))
		return rel.selectRows(selection), nil
	}

	// Row mode.
	ex.stats.FilterPasses++
	var keep []int
	ev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}}
	for ri := 0; ri < rel.numRows(); ri++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		ev.sc.row = ri
		ok := true
		for _, c := range conjuncts {
			v, err := ev.eval(c)
			if err != nil {
				return nil, err
			}
			//lint:nullsafe consumer collapse: the WHERE boundary rejects UNKNOWN rows, per SQL semantics
			if !v.Bool() {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, ri)
			if earlyLimit > 0 && len(keep) >= earlyLimit {
				break
			}
		}
	}
	return rel.selectRows(keep), nil
}

// projectRows computes the projection of a non-grouped query, returning the
// output relation plus the ORDER BY sort keys evaluated in the same context.
func (ex *executor) projectRows(stmt *sqlparser.SelectStatement, rel *relation, outer *scope) (*relation, [][]Value, error) {
	items, starCols := expandProjection(stmt, rel)
	out := &relation{n: rel.numRows()}
	for _, sc := range starCols {
		out.cols = append(out.cols, &relColumn{table: sc.table, name: sc.name, vals: nil})
	}
	for _, it := range items {
		if it.star {
			continue
		}
		out.cols = append(out.cols, &relColumn{table: "", name: it.name, vals: nil})
	}

	sortKeys := make([][]Value, rel.numRows())
	ev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}}
	for ri := 0; ri < rel.numRows(); ri++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, nil, err
		}
		ev.sc.row = ri
		col := 0
		for _, sc := range starCols {
			out.cols[col].vals = append(out.cols[col].vals, sc.vals[ri])
			col++
		}
		for _, it := range items {
			if it.star {
				continue
			}
			v, err := ev.eval(it.expr)
			if err != nil {
				return nil, nil, err
			}
			out.cols[col].vals = append(out.cols[col].vals, v)
			col++
		}
		if len(stmt.OrderBy) > 0 {
			keys, err := ex.orderKeys(stmt, ev, out, ri, items)
			if err != nil {
				return nil, nil, err
			}
			sortKeys[ri] = keys
		}
	}
	return out, sortKeys, nil
}

// projectGrouped computes grouping, aggregation, HAVING and the projection
// of a grouped query.
func (ex *executor) projectGrouped(stmt *sqlparser.SelectStatement, rel *relation, outer *scope, prefix string) (*relation, [][]Value, error) {
	// Build groups.
	var atm trace.Timer
	if ex.traced(prefix) {
		atm = ex.tracer.Span(trace.AggID(prefix), trace.KindAgg).Start()
	}
	ex.stats.AggRows += int64(rel.numRows())
	type groupEntry struct {
		rows []int
	}
	var order []string
	groups := map[string]*groupEntry{}
	if len(stmt.GroupBy) == 0 {
		key := "all"
		groups[key] = &groupEntry{rows: allRows(rel.numRows())}
		order = append(order, key)
	} else {
		ev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}}
		for ri := 0; ri < rel.numRows(); ri++ {
			if err := ex.checkDeadline(); err != nil {
				return nil, nil, err
			}
			ev.sc.row = ri
			var sb strings.Builder
			for _, g := range stmt.GroupBy {
				v, err := ev.eval(g)
				if err != nil {
					return nil, nil, err
				}
				sb.WriteString(v.Key())
				sb.WriteByte('|')
			}
			key := sb.String()
			entry, ok := groups[key]
			if !ok {
				entry = &groupEntry{}
				groups[key] = entry
				order = append(order, key)
			}
			entry.rows = append(entry.rows, ri)
		}
	}
	ex.stats.Groups += int64(len(order))
	// The aggregate span covers group building; its row count is the groups
	// formed, pre-HAVING — the same accounting as the vectorized engine's.
	atm.Done(int64(len(order)))

	items, _ := expandProjection(stmt, rel)
	for _, it := range items {
		if it.star {
			return nil, nil, fmt.Errorf("SELECT * is not supported with GROUP BY or aggregates")
		}
	}
	out := &relation{}
	for _, it := range items {
		out.cols = append(out.cols, &relColumn{table: "", name: it.name, vals: nil})
	}

	var ptm trace.Timer
	if ex.traced(prefix) {
		ptm = ex.tracer.Span(trace.ProjectID(prefix), trace.KindProject).Start()
	}
	var sortKeys [][]Value
	for _, key := range order {
		entry := groups[key]
		gev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}, group: entry.rows}
		if len(entry.rows) > 0 {
			gev.sc.row = entry.rows[0]
		}
		// HAVING filter.
		if stmt.Having != nil {
			v, err := gev.eval(stmt.Having)
			if err != nil {
				return nil, nil, err
			}
			//lint:nullsafe consumer collapse: the HAVING boundary rejects UNKNOWN groups, per SQL semantics
			if !v.Bool() {
				continue
			}
		}
		for i, it := range items {
			v, err := gev.eval(it.expr)
			if err != nil {
				return nil, nil, err
			}
			out.cols[i].vals = append(out.cols[i].vals, v)
		}
		out.n++
		if len(stmt.OrderBy) > 0 {
			keys, err := ex.orderKeys(stmt, gev, out, out.n-1, items)
			if err != nil {
				return nil, nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	ptm.Done(int64(out.numRows()))
	return out, sortKeys, nil
}

// projectionItem is one resolved projection element.
type projectionItem struct {
	name string
	expr sqlparser.Expr
	star bool
}

// expandProjection resolves projection items: star items expand to the input
// columns, others get their output name from the alias, column name or
// rendered expression.
func expandProjection(stmt *sqlparser.SelectStatement, rel *relation) ([]projectionItem, []*relColumn) {
	var items []projectionItem
	var starCols []*relColumn
	for _, p := range stmt.Projection {
		if p.Star {
			items = append(items, projectionItem{star: true})
			for _, c := range rel.cols {
				if p.Qualifier == "" || strings.EqualFold(p.Qualifier, c.table) {
					starCols = append(starCols, c)
				}
			}
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = strings.ToLower(p.Expr.SQL())
			}
		}
		items = append(items, projectionItem{name: strings.ToLower(name), expr: p.Expr})
	}
	return items, starCols
}

// orderKeys evaluates the ORDER BY expressions for the current output row.
// A bare column reference naming a projection alias sorts by that output
// column; everything else is evaluated in the current row/group context.
func (ex *executor) orderKeys(stmt *sqlparser.SelectStatement, ev *evaluator, out *relation, outRow int, items []projectionItem) ([]Value, error) {
	keys := make([]Value, len(stmt.OrderBy))
	for i, ob := range stmt.OrderBy {
		if cr, ok := ob.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			matched := false
			for ci, it := range items {
				if !it.star && it.name == strings.ToLower(cr.Column) {
					keys[i] = out.cols[itemColumn(items, len(out.cols), ci)].vals[outRow]
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		if num, ok := ob.Expr.(*sqlparser.NumberLit); ok {
			// ORDER BY <ordinal>.
			idx := int(parseNumber(num.Value).Int()) - 1
			if idx >= 0 && idx < len(out.cols) {
				keys[i] = out.cols[idx].vals[outRow]
				continue
			}
		}
		v, err := ev.eval(ob.Expr)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// itemColumn maps a projection item index to its output column index: star
// items expand to the full star block ahead of the computed columns, so a
// computed item's column sits after the star block at its non-star rank.
func itemColumn(items []projectionItem, numOutCols, itemIdx int) int {
	nonStar := 0
	for _, it := range items {
		if !it.star {
			nonStar++
		}
	}
	starWidth := numOutCols - nonStar
	rank := 0
	for i := 0; i < itemIdx; i++ {
		if !items[i].star {
			rank++
		}
	}
	return starWidth + rank
}

// distinctRows removes duplicate output rows (and their sort keys).
func distinctRows(rel *relation, sortKeys [][]Value) (*relation, [][]Value) {
	seen := map[string]bool{}
	var keep []int
	for i := 0; i < rel.numRows(); i++ {
		var sb strings.Builder
		for _, c := range rel.cols {
			sb.WriteString(c.vals[i].Key())
			sb.WriteByte('|')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			keep = append(keep, i)
		}
	}
	out := rel.selectRows(keep)
	if sortKeys == nil {
		return out, nil
	}
	var keys [][]Value
	for _, i := range keep {
		if i < len(sortKeys) {
			keys = append(keys, sortKeys[i])
		}
	}
	return out, keys
}

// sortRelation sorts the output rows by the precomputed keys.
func sortRelation(rel *relation, keys [][]Value, orderBy []sqlparser.OrderItem) *relation {
	idx := allRows(rel.numRows())
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range orderBy {
			c := Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if orderBy[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return rel.selectRows(idx)
}

// applyLimit applies LIMIT/OFFSET.
func applyLimit(rel *relation, limit, offset *int64) *relation {
	if limit == nil && offset == nil {
		return rel
	}
	start := 0
	if offset != nil {
		start = int(*offset)
	}
	end := rel.numRows()
	if limit != nil && start+int(*limit) < end {
		end = start + int(*limit)
	}
	if start > rel.numRows() {
		start = rel.numRows()
	}
	var keep []int
	for i := start; i < end; i++ {
		keep = append(keep, i)
	}
	return rel.selectRows(keep)
}

// The statement-level analysis that used to live here — conjunct splitting
// with the common-OR lift, join-edge extraction, aggregate detection,
// needed-column computation and sub-query correlation — moved to the shared
// logical-plan layer (internal/plan), where it runs once per (schema,
// normalized SQL) instead of once per execution.
