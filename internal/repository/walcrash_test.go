package repository

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// The crash-point fault-injection harness: a golden workload runs against a
// durable store whose WAL sinks record every byte and every record
// boundary. Each prefix of the recorded log — cut at every record boundary
// AND inside every record — is then materialised as the on-disk state a
// kill -9 at that instant would have left behind, recovered with Open, and
// checked against the durability contract:
//
//  1. every mutation acknowledged before the crash point is present
//     (in particular, no completed measurement is ever lost),
//  2. nothing that was not acknowledged is present,
//  3. no query slot is double-leased: recovery plus a full drain of the
//     queue measures every slot exactly once.

// memSink is an in-memory walSink recording the byte stream and the offset
// after every Sync — the instants at which the WAL contract says the prefix
// must be recoverable.
type memSink struct {
	mu         sync.Mutex
	buf        []byte
	boundaries []int
}

func (m *memSink) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = append(m.buf, p...)
	return len(p), nil
}

func (m *memSink) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.boundaries = append(m.boundaries, len(m.buf))
	return nil
}

func (m *memSink) Close() error { return nil }

// sinkRecorder hands out memSinks keyed by log file base name.
type sinkRecorder struct {
	mu    sync.Mutex
	sinks map[string]*memSink
}

func newSinkRecorder() *sinkRecorder { return &sinkRecorder{sinks: map[string]*memSink{}} }

func (r *sinkRecorder) factory(path string) (walSink, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &memSink{}
	r.sinks[filepath.Base(path)] = s
	return s, nil
}

// nosyncFactory opens real append-only files but skips fsync — recovery
// opens in the harness re-read the files in-process, so durability of the
// recovered store itself is irrelevant and the fsyncs would dominate the
// test's runtime.
type nosyncSink struct{ f *os.File }

func (n nosyncSink) Write(p []byte) (int, error) { return n.f.Write(p) }
func (n nosyncSink) Sync() error                 { return nil }
func (n nosyncSink) Close() error                { return n.f.Close() }

func nosyncFactory(path string) (walSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return nosyncSink{f: f}, nil
}

func quietLogf(string, ...any) {}

// goldenRun captures the golden workload's identifiers and, per WAL-record
// count k, the exact set of result ids that had been acknowledged when the
// k-th record became durable.
type goldenRun struct {
	owner     string
	ownerKey  string
	projectID int
	expID     int
	dbms      string
	platform  string
	queryIDs  []int
	// resultsAt[k] = acknowledged result ids after k shard-WAL records.
	resultsAt [][]int
	// readyAt is the record count from which project+experiment+queries
	// exist, i.e. from which the queue can be drained.
	readyAt int
}

// runGoldenWorkload drives one project through its life cycle on a durable
// single-shard store: catalog edits, batch leases, completions (successful
// and failed), moderation, a kill, and leases still in flight at the end.
// Every step is exactly one shard-WAL record.
func runGoldenWorkload(t *testing.T, s *Store) *goldenRun {
	t.Helper()
	g := &goldenRun{owner: "martin", dbms: "mariadb", platform: "jetson"}
	var acked []int
	step := func(newResult *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if newResult != nil {
			acked = append(acked, newResult.ID)
		}
		g.resultsAt = append(g.resultsAt, append([]int(nil), acked...))
	}
	must := func(err error) { step(nil, err) }

	// Meta partition: users (not counted as shard records).
	if _, err := s.RegisterUser("martin", "martin@example.org"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterUser("ying", "ying@example.org"); err != nil {
		t.Fatal(err)
	}

	p, err := s.CreateProject("martin", "crash-proof", "durability harness", true)
	step(nil, err) // record 1
	g.projectID = p.ID
	g.ownerKey = p.Contributors[0].Key
	e, err := s.AddExperiment("martin", p.ID, "Q1 space", "SELECT count(*) FROM nation", "")
	step(nil, err) // record 2
	g.expID = e.ID
	must(s.ReplaceQueries("martin", p.ID, e.ID, []QueryRecord{ // record 3
		{ID: 1, SQL: "SELECT 1"}, {ID: 2, SQL: "SELECT 2"},
		{ID: 3, SQL: "SELECT 3"}, {ID: 4, SQL: "SELECT 4"},
	}))
	g.readyAt = len(g.resultsAt)
	must(s.AppendQueries("martin", p.ID, e.ID, []QueryRecord{ // record 4
		{ID: 5, SQL: "SELECT 5"}, {ID: 6, SQL: "SELECT 6"},
	}))
	g.queryIDs = []int{1, 2, 3, 4, 5, 6}
	driverKey, err := s.Invite("martin", p.ID, "ying")
	step(nil, err)                                                                    // record 5
	must(s.ReferenceCatalogs("martin", p.ID, []string{g.dbms}, []string{g.platform})) // record 6

	lease := func(max int) []*Task { // one record per batch
		t.Helper()
		tasks, err := s.RequestTasks(driverKey, g.expID, g.dbms, g.platform, max)
		step(nil, err)
		return tasks
	}
	complete := func(task *Task, errMsg string) *Result {
		t.Helper()
		r, err := s.CompleteTask(task.ID, driverKey, []float64{0.25, 0.24}, errMsg, nil)
		step(r, err)
		return r
	}

	batch := lease(2) // record 7: queries 1,2
	if len(batch) != 2 {
		t.Fatalf("leased %d tasks, want 2", len(batch))
	}
	first := complete(batch[0], "") // record 8: result for query 1
	c, err := s.AddComment("ying", p.ID, "first measurement in")
	step(nil, err) // record 9
	_ = c
	complete(batch[1], "syntax error near FROM") // record 10: failed result, still covers query 2
	r3, err := s.AddResult(g.ownerKey, g.expID, 1, g.dbms, "cloud", []float64{0.5}, "", nil)
	step(r3, err) // record 11: direct result on another platform slot

	batch = lease(2) // record 12: queries 3,4
	if len(batch) != 2 {
		t.Fatalf("leased %d tasks, want 2", len(batch))
	}
	complete(batch[0], "")                       // record 13: result for query 3
	must(s.HideResult("martin", first.ID, true)) // record 14
	must(s.KillTask("martin", batch[1].ID))      // record 15: query 4 slot free again
	batch = lease(10)                            // record 16: queries 4,5,6
	if len(batch) != 3 {
		t.Fatalf("leased %d tasks, want 3", len(batch))
	}
	complete(batch[1], "") // record 17: result for query 5; leases on 4 and 6 still running
	return g
}

// materializeCrash writes the on-disk image a crash would leave behind: the
// full meta log and a prefix of the shard log, no snapshots (the crash
// happened before any checkpoint).
func materializeCrash(t *testing.T, metaWAL, shardPrefix []byte) string {
	t.Helper()
	dir := t.TempDir()
	gen := filepath.Join(dir, "gen-000001")
	if err := os.MkdirAll(gen, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		filepath.Join(gen, "meta.wal"):  metaWAL,
		filepath.Join(gen, "s000.wal"):  shardPrefix,
		filepath.Join(dir, currentFile): []byte("gen-000001\n"),
	} {
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// resultIDs extracts the sorted ids of every result the owner can see.
func resultIDs(s *Store, g *goldenRun) []int {
	var ids []int
	for _, r := range s.Results(g.owner, g.projectID) {
		ids = append(ids, r.ID)
	}
	return ids
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[int]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}

// assertNoDoubleLease checks the direct invariant on the recovered state:
// at most one running task per query slot, and no running task for a slot
// that already has a result.
func assertNoDoubleLease(t *testing.T, s *Store, g *goldenRun) {
	t.Helper()
	type slot struct {
		query          int
		dbms, platform string
	}
	covered := map[slot]string{}
	for _, r := range s.Results(g.owner, g.projectID) {
		covered[slot{r.QueryID, r.DBMSKey, r.PlatformKey}] = "result"
	}
	for _, task := range s.Tasks(g.owner, g.projectID) {
		if task.Status != TaskRunning {
			continue
		}
		k := slot{task.QueryID, task.DBMSKey, task.PlatformKey}
		if prev := covered[k]; prev != "" {
			t.Fatalf("query %d on %s/%s double-covered: running task after %s", k.query, k.dbms, k.platform, prev)
		}
		covered[k] = "running task"
	}
}

// drainQueue advances time beyond every lease deadline and measures what is
// left, then asserts every query slot ended up measured exactly once.
func drainQueue(t *testing.T, s *Store, g *goldenRun) {
	t.Helper()
	s.now = func() time.Time { return time.Now().Add(48 * time.Hour) }
	for rounds := 0; ; rounds++ {
		if rounds > len(g.queryIDs)+1 {
			t.Fatal("queue drain does not terminate")
		}
		tasks, err := s.RequestTasks(g.ownerKey, g.expID, g.dbms, g.platform, len(g.queryIDs))
		if err != nil {
			t.Fatal(err)
		}
		if len(tasks) == 0 {
			break
		}
		for _, task := range tasks {
			if _, err := s.CompleteTask(task.ID, g.ownerKey, []float64{0.1}, "", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	perSlot := map[int]int{}
	for _, r := range s.Results(g.owner, g.projectID) {
		if r.DBMSKey == g.dbms && r.PlatformKey == g.platform {
			perSlot[r.QueryID]++
		}
	}
	p := s.Project(g.projectID)
	if p == nil {
		t.Fatal("project lost")
	}
	e := p.Experiment(g.expID)
	if e == nil {
		t.Fatal("experiment lost")
	}
	for _, q := range e.Queries {
		if perSlot[q.ID] != 1 {
			t.Fatalf("query %d measured %d times after drain, want exactly 1", q.ID, perSlot[q.ID])
		}
	}
}

// TestCrashAtEveryWALRecordBoundary is the property test over ALL crash
// points of the golden workload: for every record boundary and for two cuts
// inside every record (mid-header and one byte short of complete), recovery
// must restore exactly the acknowledged prefix and a subsequent drain must
// measure every slot exactly once.
func TestCrashAtEveryWALRecordBoundary(t *testing.T) {
	rec := newSinkRecorder()
	s, err := open(t.TempDir(), 1, quietLogf, rec.factory)
	if err != nil {
		t.Fatal(err)
	}
	g := runGoldenWorkload(t, s)

	shardLog := rec.sinks["s000.wal"]
	metaLog := rec.sinks["meta.wal"]
	if shardLog == nil || metaLog == nil {
		t.Fatalf("recorded sinks: %v", rec.sinks)
	}
	offs := append([]int{0}, shardLog.boundaries...)
	n := len(offs) - 1
	if n != len(g.resultsAt) {
		t.Fatalf("golden run produced %d WAL records for %d steps — the 1 step = 1 record accounting drifted", n, len(g.resultsAt))
	}

	expectAt := func(k int) []int {
		if k == 0 {
			return nil
		}
		return g.resultsAt[k-1]
	}

	crashPoints := 0
	for k := 0; k <= n; k++ {
		// The clean cut after k records, plus torn cuts inside record k+1:
		// mid-header and one byte short of the full frame. A torn record was
		// never acknowledged, so both must recover to the same state as the
		// boundary before it.
		cuts := []int{offs[k]}
		if k < n {
			cuts = append(cuts, offs[k]+3)
			if offs[k+1]-1 > offs[k]+3 {
				cuts = append(cuts, offs[k+1]-1)
			}
		}
		for _, cut := range cuts {
			crashPoints++
			dir := materializeCrash(t, metaLog.buf, shardLog.buf[:cut])
			recovered, err := open(dir, 1, quietLogf, nosyncFactory)
			if err != nil {
				t.Fatalf("crash point %d bytes (record %d): recovery failed: %v", cut, k, err)
			}
			want := expectAt(k)
			if got := resultIDs(recovered, g); !sameIDs(got, want) {
				t.Fatalf("crash point %d bytes (record %d): recovered results %v, want %v", cut, k, got, want)
			}
			assertNoDoubleLease(t, recovered, g)
			if k >= g.readyAt {
				drainQueue(t, recovered, g)
			}
			if err := recovered.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if crashPoints < 3*n {
		t.Fatalf("only %d crash points exercised for %d records", crashPoints, n)
	}
	t.Logf("%d crash points over %d WAL records: no acknowledged result lost, no slot double-leased", crashPoints, n)
}

// walFrameOffsets walks the physical frames of a log image and returns the
// byte offset after every complete frame — independently of decodeWAL, so
// the harness does not rely on the code under test for its cut points.
func walFrameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	off := 0
	for off+walHeaderSize <= len(data) {
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if length <= 0 || off+walHeaderSize+length > len(data) {
			break
		}
		off += walHeaderSize + length
		offs = append(offs, off)
	}
	return offs
}

// copyTree duplicates a directory tree (regular files only).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		from, to := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(to, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, from, to)
			continue
		}
		data, err := os.ReadFile(from)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(to, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashAfterCheckpoint cuts the WAL written after a checkpoint: the
// recovered state must combine the snapshot with the replayed tail, an
// acknowledged-results prefix must survive every cut, and the untouched
// second shard must stay complete.
func TestCrashAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := open(dir, 2, quietLogf, nosyncFactory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterUser("martin", "martin@example.org"); err != nil {
		t.Fatal(err)
	}
	type proj struct {
		id, exp int
		key     string
		acked   []int
	}
	mkProject := func(name string) *proj {
		t.Helper()
		p, err := s.CreateProject("martin", name, "", true)
		if err != nil {
			t.Fatal(err)
		}
		e, err := s.AddExperiment("martin", p.ID, "exp", "SELECT 1", "")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ReplaceQueries("martin", p.ID, e.ID, []QueryRecord{
			{ID: 1, SQL: "SELECT 1"}, {ID: 2, SQL: "SELECT 2"}, {ID: 3, SQL: "SELECT 3"},
		}); err != nil {
			t.Fatal(err)
		}
		return &proj{id: p.ID, exp: e.ID, key: p.Contributors[0].Key}
	}
	measure := func(pr *proj, queryID int) {
		t.Helper()
		r, err := s.AddResult(pr.key, pr.exp, queryID, "duckdb", "laptop", []float64{0.1}, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		pr.acked = append(pr.acked, r.ID)
	}
	// Projects 1 and 2 land on different shards of the 2-shard store.
	p1, p2 := mkProject("alpha"), mkProject("beta")
	if s.shardFor(p1.id) == s.shardFor(p2.id) {
		t.Fatal("test projects collapsed onto one shard")
	}
	measure(p1, 1)
	measure(p2, 1)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	measure(p1, 2)
	measure(p2, 2)
	measure(p1, 3)
	measure(p2, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	part := shardPartName(s.shardFor(p1.id).idx)
	genDir := s.gen
	full, err := os.ReadFile(walPath(genDir, part))
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, walHeaderSize - 1}
	for _, b := range walFrameOffsets(t, full) {
		cuts = append(cuts, b, b-1, b+3)
	}
	for _, cut := range cuts {
		if cut < 0 || cut > len(full) {
			continue
		}
		// Crash-copy the whole store directory, then truncate p1's log.
		crashDir := t.TempDir()
		copyTree(t, dir, crashDir)
		crashGen := filepath.Join(crashDir, filepath.Base(genDir))
		if err := os.WriteFile(walPath(crashGen, part), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recovered, err := open(crashDir, 2, quietLogf, nosyncFactory)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		// The acknowledged results of the cut shard form a prefix of the
		// golden sequence; the other shard is complete.
		got := map[int]bool{}
		for _, r := range recovered.Results("martin", p1.id) {
			got[r.ID] = true
		}
		prefixLen := 0
		for i, id := range p1.acked {
			if !got[id] {
				break
			}
			prefixLen = i + 1
		}
		if len(got) != prefixLen {
			t.Fatalf("cut %d: recovered results of shard %s are not a prefix of the acknowledged sequence %v", cut, part, p1.acked)
		}
		// The snapshot covers everything acknowledged before the checkpoint.
		if prefixLen < 1 {
			t.Fatalf("cut %d: checkpointed result lost (recovered %d of %v)", cut, prefixLen, p1.acked)
		}
		if other := recovered.Results("martin", p2.id); len(other) != len(p2.acked) {
			t.Fatalf("cut %d: untouched shard lost results: %d of %d", cut, len(other), len(p2.acked))
		}
		if err := recovered.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
