package datagen

import (
	"fmt"

	"sqalpel/internal/engine"
)

// TPCHOptions parameterise the TPC-H data generator.
type TPCHOptions struct {
	// ScaleFactor follows the TPC-H convention: SF 1 is roughly 6 million
	// lineitem rows. Fractional scale factors scale every table linearly
	// (region and nation keep their fixed sizes).
	ScaleFactor float64
	// Seed makes the data set reproducible; zero selects the default seed.
	Seed uint64
}

// Scaled returns n scaled by the scale factor, with a floor of min.
func (o TPCHOptions) scaled(n int, min int) int {
	v := int(float64(n) * o.ScaleFactor)
	if v < min {
		return min
	}
	return v
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var (
	mktSegments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	orderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes       = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	shipInstructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers      = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG", "JUMBO BAG", "WRAP CASE"}
	typeSyllable1   = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2   = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3   = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	partColors      = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow"}
	commentWords    = []string{"carefully", "quickly", "furiously", "slyly", "blithely", "regular", "express", "bold", "final", "ironic", "pending", "silent", "even", "special", "requests", "deposits", "accounts", "packages", "instructions", "theodolites", "pinto", "beans", "foxes", "ideas", "dependencies", "excuses", "platelets", "Customer", "Complaints", "unusual", "courts"}
)

func comment(r *rng, words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += r.Pick(commentWords)
	}
	return out
}

func phone(r *rng, nationKey int) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nationKey, r.Range(100, 999), r.Range(100, 999), r.Range(1000, 9999))
}

// TPCH generates a TPC-H database at the given scale factor.
func TPCH(opts TPCHOptions) *engine.Database {
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 0.001
	}
	r := newRNG(opts.Seed)
	db := engine.NewDatabase(fmt.Sprintf("tpch-sf%g", opts.ScaleFactor))

	// region
	region := engine.NewTable("region",
		engine.Column{Name: "r_regionkey", Type: engine.TypeInt},
		engine.Column{Name: "r_name", Type: engine.TypeString},
		engine.Column{Name: "r_comment", Type: engine.TypeString},
	)
	for i, name := range regions {
		region.MustAppendRow(engine.NewInt(int64(i)), engine.NewString(name), engine.NewString(comment(r, 6)))
	}
	db.AddTable(region)

	// nation
	nation := engine.NewTable("nation",
		engine.Column{Name: "n_nationkey", Type: engine.TypeInt},
		engine.Column{Name: "n_name", Type: engine.TypeString},
		engine.Column{Name: "n_regionkey", Type: engine.TypeInt},
		engine.Column{Name: "n_comment", Type: engine.TypeString},
	)
	for i, n := range nations {
		nation.MustAppendRow(engine.NewInt(int64(i)), engine.NewString(n.name), engine.NewInt(int64(n.region)), engine.NewString(comment(r, 8)))
	}
	db.AddTable(nation)

	// supplier
	numSupplier := opts.scaled(10000, 10)
	supplier := engine.NewTable("supplier",
		engine.Column{Name: "s_suppkey", Type: engine.TypeInt},
		engine.Column{Name: "s_name", Type: engine.TypeString},
		engine.Column{Name: "s_address", Type: engine.TypeString},
		engine.Column{Name: "s_nationkey", Type: engine.TypeInt},
		engine.Column{Name: "s_phone", Type: engine.TypeString},
		engine.Column{Name: "s_acctbal", Type: engine.TypeFloat},
		engine.Column{Name: "s_comment", Type: engine.TypeString},
	)
	for i := 1; i <= numSupplier; i++ {
		nk := r.Intn(len(nations))
		c := comment(r, 8)
		// ~1% of suppliers carry the Customer Complaints marker used by Q16.
		if r.Intn(100) == 0 {
			c = "the Customer has Complaints about " + c
		}
		supplier.MustAppendRow(
			engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("Supplier#%09d", i)),
			engine.NewString(fmt.Sprintf("addr %d %s", r.Range(1, 999), comment(r, 2))),
			engine.NewInt(int64(nk)),
			engine.NewString(phone(r, nk)),
			engine.NewFloat(float64(r.Range(-99999, 999999))/100),
			engine.NewString(c),
		)
	}
	db.AddTable(supplier)

	// part
	numPart := opts.scaled(200000, 20)
	part := engine.NewTable("part",
		engine.Column{Name: "p_partkey", Type: engine.TypeInt},
		engine.Column{Name: "p_name", Type: engine.TypeString},
		engine.Column{Name: "p_mfgr", Type: engine.TypeString},
		engine.Column{Name: "p_brand", Type: engine.TypeString},
		engine.Column{Name: "p_type", Type: engine.TypeString},
		engine.Column{Name: "p_size", Type: engine.TypeInt},
		engine.Column{Name: "p_container", Type: engine.TypeString},
		engine.Column{Name: "p_retailprice", Type: engine.TypeFloat},
		engine.Column{Name: "p_comment", Type: engine.TypeString},
	)
	for i := 1; i <= numPart; i++ {
		mfgr := r.Range(1, 5)
		brand := fmt.Sprintf("Brand#%d%d", mfgr, r.Range(1, 5))
		ptype := r.Pick(typeSyllable1) + " " + r.Pick(typeSyllable2) + " " + r.Pick(typeSyllable3)
		name := r.Pick(partColors) + " " + r.Pick(partColors) + " " + r.Pick(partColors) + " " + r.Pick(partColors) + " " + r.Pick(partColors)
		part.MustAppendRow(
			engine.NewInt(int64(i)),
			engine.NewString(name),
			engine.NewString(fmt.Sprintf("Manufacturer#%d", mfgr)),
			engine.NewString(brand),
			engine.NewString(ptype),
			engine.NewInt(int64(r.Range(1, 50))),
			engine.NewString(r.Pick(containers)),
			engine.NewFloat(900+float64(i%1000)+float64(r.Intn(100))/100),
			engine.NewString(comment(r, 4)),
		)
	}
	db.AddTable(part)

	// partsupp: 4 suppliers per part.
	partsupp := engine.NewTable("partsupp",
		engine.Column{Name: "ps_partkey", Type: engine.TypeInt},
		engine.Column{Name: "ps_suppkey", Type: engine.TypeInt},
		engine.Column{Name: "ps_availqty", Type: engine.TypeInt},
		engine.Column{Name: "ps_supplycost", Type: engine.TypeFloat},
		engine.Column{Name: "ps_comment", Type: engine.TypeString},
	)
	for p := 1; p <= numPart; p++ {
		for s := 0; s < 4; s++ {
			suppkey := (p+s*(numSupplier/4+1))%numSupplier + 1
			partsupp.MustAppendRow(
				engine.NewInt(int64(p)),
				engine.NewInt(int64(suppkey)),
				engine.NewInt(int64(r.Range(1, 9999))),
				engine.NewFloat(float64(r.Range(100, 100000))/100),
				engine.NewString(comment(r, 6)),
			)
		}
	}
	db.AddTable(partsupp)

	// customer
	numCustomer := opts.scaled(150000, 15)
	customer := engine.NewTable("customer",
		engine.Column{Name: "c_custkey", Type: engine.TypeInt},
		engine.Column{Name: "c_name", Type: engine.TypeString},
		engine.Column{Name: "c_address", Type: engine.TypeString},
		engine.Column{Name: "c_nationkey", Type: engine.TypeInt},
		engine.Column{Name: "c_phone", Type: engine.TypeString},
		engine.Column{Name: "c_acctbal", Type: engine.TypeFloat},
		engine.Column{Name: "c_mktsegment", Type: engine.TypeString},
		engine.Column{Name: "c_comment", Type: engine.TypeString},
	)
	for i := 1; i <= numCustomer; i++ {
		nk := r.Intn(len(nations))
		customer.MustAppendRow(
			engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("Customer#%09d", i)),
			engine.NewString(fmt.Sprintf("addr %d %s", r.Range(1, 999), comment(r, 2))),
			engine.NewInt(int64(nk)),
			engine.NewString(phone(r, nk)),
			engine.NewFloat(float64(r.Range(-99999, 999999))/100),
			engine.NewString(r.Pick(mktSegments)),
			engine.NewString(comment(r, 10)),
		)
	}
	db.AddTable(customer)

	// orders and lineitem
	numOrders := opts.scaled(1500000, 30)
	startDate := engine.MustParseDate("1992-01-01")
	endDate := engine.MustParseDate("1998-08-02")
	dateRange := int(endDate - startDate)

	orders := engine.NewTable("orders",
		engine.Column{Name: "o_orderkey", Type: engine.TypeInt},
		engine.Column{Name: "o_custkey", Type: engine.TypeInt},
		engine.Column{Name: "o_orderstatus", Type: engine.TypeString},
		engine.Column{Name: "o_totalprice", Type: engine.TypeFloat},
		engine.Column{Name: "o_orderdate", Type: engine.TypeDate},
		engine.Column{Name: "o_orderpriority", Type: engine.TypeString},
		engine.Column{Name: "o_clerk", Type: engine.TypeString},
		engine.Column{Name: "o_shippriority", Type: engine.TypeInt},
		engine.Column{Name: "o_comment", Type: engine.TypeString},
	)
	lineitem := engine.NewTable("lineitem",
		engine.Column{Name: "l_orderkey", Type: engine.TypeInt},
		engine.Column{Name: "l_partkey", Type: engine.TypeInt},
		engine.Column{Name: "l_suppkey", Type: engine.TypeInt},
		engine.Column{Name: "l_linenumber", Type: engine.TypeInt},
		engine.Column{Name: "l_quantity", Type: engine.TypeFloat},
		engine.Column{Name: "l_extendedprice", Type: engine.TypeFloat},
		engine.Column{Name: "l_discount", Type: engine.TypeFloat},
		engine.Column{Name: "l_tax", Type: engine.TypeFloat},
		engine.Column{Name: "l_returnflag", Type: engine.TypeString},
		engine.Column{Name: "l_linestatus", Type: engine.TypeString},
		engine.Column{Name: "l_shipdate", Type: engine.TypeDate},
		engine.Column{Name: "l_commitdate", Type: engine.TypeDate},
		engine.Column{Name: "l_receiptdate", Type: engine.TypeDate},
		engine.Column{Name: "l_shipinstruct", Type: engine.TypeString},
		engine.Column{Name: "l_shipmode", Type: engine.TypeString},
		engine.Column{Name: "l_comment", Type: engine.TypeString},
	)

	currentDate := engine.MustParseDate("1995-06-17")
	for o := 1; o <= numOrders; o++ {
		// As in the TPC-H specification, a third of the customers (custkey
		// divisible by three) never place orders; Q13's zero bucket and the
		// NOT EXISTS probe of Q22 depend on them.
		custkey := r.Range(1, numCustomer)
		for custkey%3 == 0 {
			custkey = r.Range(1, numCustomer)
		}
		orderdate := startDate + int64(r.Intn(dateRange-121))
		lines := r.Range(1, 7)
		var totalPrice float64
		allShipped, noneShipped := true, true

		// Lineitems first so the order status and total can be derived.
		type lineRow struct {
			vals []engine.Value
		}
		var lineRows []lineRow
		for ln := 1; ln <= lines; ln++ {
			partkey := r.Range(1, numPart)
			suppkey := (partkey+r.Intn(4)*(numSupplier/4+1))%numSupplier + 1
			quantity := float64(r.Range(1, 50))
			price := (90000 + float64((partkey%20000)*10) + float64(r.Intn(1000))) / 100 * quantity / 10
			discount := float64(r.Intn(11)) / 100
			tax := float64(r.Intn(9)) / 100
			shipdate := orderdate + int64(r.Range(1, 121))
			commitdate := orderdate + int64(r.Range(30, 90))
			receiptdate := shipdate + int64(r.Range(1, 30))
			returnflag := "N"
			if receiptdate <= currentDate {
				if r.Intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			}
			linestatus := "O"
			if shipdate <= currentDate {
				linestatus = "F"
				noneShipped = false
			} else {
				allShipped = false
			}
			totalPrice += price * (1 - discount) * (1 + tax)
			lineRows = append(lineRows, lineRow{vals: []engine.Value{
				engine.NewInt(int64(o)),
				engine.NewInt(int64(partkey)),
				engine.NewInt(int64(suppkey)),
				engine.NewInt(int64(ln)),
				engine.NewFloat(quantity),
				engine.NewFloat(price),
				engine.NewFloat(discount),
				engine.NewFloat(tax),
				engine.NewString(returnflag),
				engine.NewString(linestatus),
				engine.NewDate(shipdate),
				engine.NewDate(commitdate),
				engine.NewDate(receiptdate),
				engine.NewString(r.Pick(shipInstructs)),
				engine.NewString(r.Pick(shipModes)),
				engine.NewString(comment(r, 4)),
			}})
		}
		status := "P"
		if allShipped {
			status = "F"
		} else if noneShipped {
			status = "O"
		}
		oc := comment(r, 8)
		// ~2% of orders carry the "special requests" marker used by Q13.
		if r.Intn(50) == 0 {
			oc = "special packages requests " + oc
		}
		orders.MustAppendRow(
			engine.NewInt(int64(o)),
			engine.NewInt(int64(custkey)),
			engine.NewString(status),
			engine.NewFloat(totalPrice),
			engine.NewDate(orderdate),
			engine.NewString(r.Pick(orderPriorities)),
			engine.NewString(fmt.Sprintf("Clerk#%09d", r.Range(1, 1000))),
			engine.NewInt(0),
			engine.NewString(oc),
		)
		for _, lr := range lineRows {
			lineitem.MustAppendRow(lr.vals...)
		}
	}
	db.AddTable(orders)
	db.AddTable(lineitem)
	return db
}
