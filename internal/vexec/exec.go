package vexec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sqalpel/internal/sqlparser"
)

// ErrUnsupported marks statements (or runtime value shapes) outside the
// vectorized subset; the engine-level adapter falls back to the interpreter
// when it sees this error.
var ErrUnsupported = errors.New("vexec: unsupported construct")

// DefaultBatchSize is the number of rows per pipeline batch.
const DefaultBatchSize = 1024

const defaultMaxJoinRows = 4_000_000

// Options configure one execution.
type Options struct {
	// BatchSize is the pipeline batch size (default 1024).
	BatchSize int
	// MaxJoinRows guards intermediate join sizes (default 4,000,000).
	MaxJoinRows int
	// Deadline aborts the query when passed; zero means no deadline.
	Deadline time.Time
}

// Stats are the execution counters of one run.
type Stats struct {
	RowsScanned  int64
	Batches      int64
	FilterPasses int64
	HashJoins    int64
	LoopJoins    int64
	Groups       int64
	RowsReturned int64
}

// Result is a finished query: named, typed output columns.
type Result struct {
	Columns []string
	Cols    []*Vector
	Stats   Stats
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// executor runs one statement.
type executor struct {
	cat   Catalog
	opts  Options
	stats Stats
}

// Execute runs a parsed SELECT against the catalog.
func Execute(cat Catalog, stmt *sqlparser.SelectStatement, opts Options) (*Result, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.MaxJoinRows <= 0 {
		opts.MaxJoinRows = defaultMaxJoinRows
	}
	if err := checkSupported(stmt); err != nil {
		return nil, err
	}
	ex := &executor{cat: cat, opts: opts}
	res, err := ex.run(stmt)
	if err != nil {
		return nil, err
	}
	res.Stats = ex.stats
	return res, nil
}

// checkDeadline aborts overdue queries; called once per batch.
func (ex *executor) checkDeadline() error {
	if ex.opts.Deadline.IsZero() {
		return nil
	}
	if time.Now().After(ex.opts.Deadline) {
		return fmt.Errorf("query exceeded its time budget")
	}
	return nil
}

// --- static support check ----------------------------------------------------

// checkSupported rejects the statement shapes the vectorized subset does not
// cover: set operations, derived tables, outer joins and sub-queries.
func checkSupported(stmt *sqlparser.SelectStatement) error {
	if stmt.SetNext != nil {
		return fmt.Errorf("%w: set operations", ErrUnsupported)
	}
	exprs := []sqlparser.Expr{stmt.Where, stmt.Having}
	for _, p := range stmt.Projection {
		exprs = append(exprs, p.Expr)
	}
	exprs = append(exprs, stmt.GroupBy...)
	for _, o := range stmt.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if len(sqlparser.Subqueries(e)) > 0 {
			return fmt.Errorf("%w: sub-queries", ErrUnsupported)
		}
	}
	var checkTE func(te sqlparser.TableExpr) error
	checkTE = func(te sqlparser.TableExpr) error {
		switch t := te.(type) {
		case *sqlparser.TableName:
			return nil
		case *sqlparser.DerivedTable:
			return fmt.Errorf("%w: derived tables", ErrUnsupported)
		case *sqlparser.JoinExpr:
			if t.Kind == "LEFT" || t.Kind == "RIGHT" || t.Kind == "FULL" {
				return fmt.Errorf("%w: %s outer joins", ErrUnsupported, t.Kind)
			}
			if t.On != nil && len(sqlparser.Subqueries(t.On)) > 0 {
				return fmt.Errorf("%w: sub-queries", ErrUnsupported)
			}
			if err := checkTE(t.Left); err != nil {
				return err
			}
			return checkTE(t.Right)
		default:
			return fmt.Errorf("%w: table expression %T", ErrUnsupported, te)
		}
	}
	for _, te := range stmt.From {
		if err := checkTE(te); err != nil {
			return err
		}
	}
	return nil
}

func statementHasAggregates(stmt *sqlparser.SelectStatement) bool {
	for _, p := range stmt.Projection {
		if p.Expr != nil && sqlparser.HasAggregate(p.Expr) {
			return true
		}
	}
	return stmt.Having != nil && sqlparser.HasAggregate(stmt.Having)
}

// --- predicate helpers (mirroring the interpreter's planning) ----------------

func splitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sqlparser.Expr{e}
}

func splitOr(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		if v.Op == "OR" {
			return append(splitOr(v.Left), splitOr(v.Right)...)
		}
	case *sqlparser.ParenExpr:
		return splitOr(v.Expr)
	}
	return []sqlparser.Expr{e}
}

func unwrapParens(e sqlparser.Expr) sqlparser.Expr {
	for {
		p, ok := e.(*sqlparser.ParenExpr)
		if !ok {
			return e
		}
		e = p.Expr
	}
}

// liftCommonOrConjuncts lifts predicates occurring in every arm of a
// top-level OR to the top level (the TPC-H Q19 pattern), so join edges
// buried in the disjunction can still drive hash joins.
func liftCommonOrConjuncts(conjuncts []sqlparser.Expr) []sqlparser.Expr {
	out := append([]sqlparser.Expr(nil), conjuncts...)
	for _, c := range conjuncts {
		arms := splitOr(c)
		if len(arms) < 2 {
			continue
		}
		common := map[string]sqlparser.Expr{}
		for _, p := range splitAnd(unwrapParens(arms[0])) {
			common[p.SQL()] = p
		}
		for _, arm := range arms[1:] {
			present := map[string]bool{}
			for _, p := range splitAnd(unwrapParens(arm)) {
				present[p.SQL()] = true
			}
			for k := range common {
				if !present[k] {
					delete(common, k)
				}
			}
		}
		for _, p := range common {
			out = append(out, p)
		}
	}
	return out
}

// schemaFind resolves a column reference against a schema with the same
// ambiguity rules as Batch.findColumn.
func schemaFind(meta []colMeta, table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, m := range meta {
		if m.name != name {
			continue
		}
		if table != "" && m.table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		return -1, errColumnNotFound
	}
	return found, nil
}

func resolvesInSchema(c *sqlparser.ColumnRef, meta []colMeta) bool {
	_, err := schemaFind(meta, c.Table, c.Column)
	return err == nil
}

func allRefsResolve(e sqlparser.Expr, meta []colMeta) bool {
	ok := true
	for _, c := range sqlparser.ColumnsIn(e) {
		if !resolvesInSchema(c, meta) {
			ok = false
		}
	}
	return ok
}

// isEquiJoinBetween reports whether the conjunct is `a = b` with a resolving
// only on the left schema and b only on the right (or vice versa).
func isEquiJoinBetween(c sqlparser.Expr, left, right []colMeta) bool {
	be, ok := c.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	lc, lok := be.Left.(*sqlparser.ColumnRef)
	rc, rok := be.Right.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return false
	}
	lInLeft, lInRight := resolvesInSchema(lc, left), resolvesInSchema(lc, right)
	rInLeft, rInRight := resolvesInSchema(rc, left), resolvesInSchema(rc, right)
	return (lInLeft && !lInRight && rInRight && !rInLeft) ||
		(rInLeft && !rInRight && lInRight && !lInLeft)
}

func equiJoinSides(c sqlparser.Expr, left []colMeta) (sqlparser.Expr, sqlparser.Expr) {
	be := c.(*sqlparser.BinaryExpr)
	lc := be.Left.(*sqlparser.ColumnRef)
	if resolvesInSchema(lc, left) {
		return be.Left, be.Right
	}
	return be.Right, be.Left
}

// --- planning ----------------------------------------------------------------

func (ex *executor) run(stmt *sqlparser.SelectStatement) (*Result, error) {
	if len(stmt.Projection) == 0 {
		return nil, fmt.Errorf("query has no projection")
	}
	pipe, err := ex.buildFrom(stmt)
	if err != nil {
		return nil, err
	}
	if len(stmt.GroupBy) > 0 || statementHasAggregates(stmt) {
		return ex.runGrouped(stmt, pipe)
	}
	return ex.runRows(stmt, pipe)
}

// buildFrom assembles the scan/filter/join pipeline of the FROM and WHERE
// clauses. Single-table conjuncts are pushed below the joins (a selection
// the interpreter does not perform — the result set is provably identical);
// equi-join conjuncts drive hash joins; the rest is applied as a residual
// filter after the joins.
func (ex *executor) buildFrom(stmt *sqlparser.SelectStatement) (operator, error) {
	conjuncts := liftCommonOrConjuncts(splitAnd(stmt.Where))
	if len(stmt.From) == 0 {
		var op operator = &dualOp{}
		if len(conjuncts) > 0 {
			op = &filterOp{ex: ex, child: op, conjuncts: conjuncts}
		}
		return op, nil
	}

	pipes := make([]operator, len(stmt.From))
	for i, te := range stmt.From {
		p, err := ex.buildTableExpr(te)
		if err != nil {
			return nil, err
		}
		pipes[i] = p
	}

	// Push single-table conjuncts below the joins. A conjunct is pushed only
	// when its references resolve in exactly one pipeline, so references that
	// would be ambiguous over the joined relation still fail the same way
	// they do in the interpreter.
	pushed := make([][]sqlparser.Expr, len(pipes))
	for ci, c := range conjuncts {
		if c == nil {
			continue
		}
		if len(sqlparser.ColumnsIn(c)) == 0 && len(pipes) > 0 {
			// Constant predicates apply anywhere; evaluate them once on the
			// first pipeline.
			pushed[0] = append(pushed[0], c)
			conjuncts[ci] = nil
			continue
		}
		target := -1
		for pi := range pipes {
			if allRefsResolve(c, pipes[pi].schema()) {
				if target >= 0 {
					target = -2 // ambiguous: leave as residual
					break
				}
				target = pi
			}
		}
		if target >= 0 {
			pushed[target] = append(pushed[target], c)
			conjuncts[ci] = nil
		}
	}
	for pi := range pipes {
		if len(pushed[pi]) > 0 {
			pipes[pi] = &filterOp{ex: ex, child: pipes[pi], conjuncts: pushed[pi]}
		}
	}

	var current operator
	if len(pipes) == 1 {
		current = pipes[0]
	} else {
		// Multiple FROM items: materialize and stitch with hash joins over
		// the equi-join conjuncts, mirroring the interpreter's join order.
		mats := make([]*Batch, len(pipes))
		for i, p := range pipes {
			m, err := materialize(p)
			if err != nil {
				return nil, err
			}
			mats[i] = m
		}
		cur := mats[0]
		remaining := mats[1:]
		for len(remaining) > 0 {
			bestIdx := -1
			var joinConjuncts []int
			for ri, r := range remaining {
				var edges []int
				for ci, c := range conjuncts {
					if c == nil {
						continue
					}
					if isEquiJoinBetween(c, cur.meta, r.meta) {
						edges = append(edges, ci)
					}
				}
				if len(edges) > 0 {
					bestIdx = ri
					joinConjuncts = edges
					break
				}
			}
			if bestIdx < 0 {
				joined, err := ex.crossJoin(cur, remaining[0])
				if err != nil {
					return nil, err
				}
				cur = joined
				remaining = remaining[1:]
				continue
			}
			var leftKeys, rightKeys []sqlparser.Expr
			for _, ci := range joinConjuncts {
				l, r := equiJoinSides(conjuncts[ci], cur.meta)
				leftKeys = append(leftKeys, l)
				rightKeys = append(rightKeys, r)
				conjuncts[ci] = nil
			}
			joined, err := ex.hashJoin(cur, remaining[bestIdx], leftKeys, rightKeys)
			if err != nil {
				return nil, err
			}
			cur = joined
			remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		}
		current = &matOp{ex: ex, b: cur}
	}

	var residual []sqlparser.Expr
	for _, c := range conjuncts {
		if c != nil {
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		current = &filterOp{ex: ex, child: current, conjuncts: residual}
	}
	return current, nil
}

// buildTableExpr builds the pipeline of one FROM item.
func (ex *executor) buildTableExpr(te sqlparser.TableExpr) (operator, error) {
	switch t := te.(type) {
	case *sqlparser.TableName:
		table, err := ex.cat.VTable(t.Name)
		if err != nil {
			return nil, err
		}
		return newScanOp(ex, table, t.Alias), nil
	case *sqlparser.JoinExpr:
		b, err := ex.buildJoinBatch(t)
		if err != nil {
			return nil, err
		}
		return &matOp{ex: ex, b: b}, nil
	default:
		return nil, fmt.Errorf("%w: table expression %T", ErrUnsupported, te)
	}
}

// buildJoinBatch materializes an explicit JOIN tree.
func (ex *executor) buildJoinBatch(j *sqlparser.JoinExpr) (*Batch, error) {
	leftOp, err := ex.buildTableExpr(j.Left)
	if err != nil {
		return nil, err
	}
	left, err := materialize(leftOp)
	if err != nil {
		return nil, err
	}
	rightOp, err := ex.buildTableExpr(j.Right)
	if err != nil {
		return nil, err
	}
	right, err := materialize(rightOp)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case "CROSS":
		return ex.crossJoin(left, right)
	case "INNER":
		conjuncts := splitAnd(j.On)
		var leftKeys, rightKeys []sqlparser.Expr
		var residual []sqlparser.Expr
		for _, c := range conjuncts {
			if isEquiJoinBetween(c, left.meta, right.meta) {
				l, r := equiJoinSides(c, left.meta)
				leftKeys = append(leftKeys, l)
				rightKeys = append(rightKeys, r)
			} else {
				residual = append(residual, c)
			}
		}
		if len(leftKeys) == 0 {
			// Arbitrary join condition: cartesian product plus a filter over
			// every conjunct.
			ex.stats.LoopJoins++
			joined, err := ex.crossJoin(left, right)
			if err != nil {
				return nil, err
			}
			return ex.applyFilterBatch(joined, conjuncts)
		}
		joined, err := ex.hashJoin(left, right, leftKeys, rightKeys)
		if err != nil {
			return nil, err
		}
		if len(residual) > 0 {
			return ex.applyFilterBatch(joined, residual)
		}
		return joined, nil
	default:
		return nil, fmt.Errorf("%w: %s join", ErrUnsupported, j.Kind)
	}
}

// --- projection and epilogue -------------------------------------------------

// projItem is one resolved projection element.
type projItem struct {
	name string
	expr sqlparser.Expr
	star bool
}

// expandProjection resolves the projection list against the input schema.
func expandProjection(stmt *sqlparser.SelectStatement, meta []colMeta) ([]projItem, []int) {
	var items []projItem
	var starCols []int
	for _, p := range stmt.Projection {
		if p.Star {
			items = append(items, projItem{star: true})
			for ci, m := range meta {
				if p.Qualifier == "" || strings.EqualFold(p.Qualifier, m.table) {
					starCols = append(starCols, ci)
				}
			}
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = strings.ToLower(p.Expr.SQL())
			}
		}
		items = append(items, projItem{name: strings.ToLower(name), expr: p.Expr})
	}
	return items, starCols
}

// runRows executes a non-grouped query: drain the pipeline, project, then
// run the shared epilogue.
func (ex *executor) runRows(stmt *sqlparser.SelectStatement, pipe operator) (*Result, error) {
	b, err := materialize(pipe)
	if err != nil {
		return nil, err
	}
	items, starCols := expandProjection(stmt, b.meta)
	ctx := &evalCtx{ex: ex, batch: b}

	var cols []*Vector
	var names []string
	for _, ci := range starCols {
		cols = append(cols, b.dense(ci))
		names = append(names, b.meta[ci].name)
	}
	for _, it := range items {
		if it.star {
			continue
		}
		v, err := ctx.eval(it.expr)
		if err != nil {
			return nil, err
		}
		cols = append(cols, v)
		names = append(names, it.name)
	}
	sortKeys, err := ex.orderKeyVectors(stmt, items, cols, ctx)
	if err != nil {
		return nil, err
	}
	return ex.epilogue(stmt, names, cols, sortKeys, b.Len())
}

// runGrouped executes a grouped query: hash-aggregate the pipeline, apply
// HAVING, project the groups, then run the shared epilogue.
func (ex *executor) runGrouped(stmt *sqlparser.SelectStatement, pipe operator) (*Result, error) {
	agg, err := ex.hashAggregate(pipe, stmt)
	if err != nil {
		return nil, err
	}
	n := agg.n
	ctx := &evalCtx{ex: ex, batch: &Batch{n: n}, aggs: agg.aggs, refs: agg.refs}

	if stmt.Having != nil {
		pred, err := ctx.eval(stmt.Having)
		if err != nil {
			return nil, err
		}
		var sel []int
		for i := 0; i < n; i++ {
			if !pred.IsNull(i) && truthy(pred, i) {
				sel = append(sel, i)
			}
		}
		if len(sel) < n {
			for k, v := range agg.aggs {
				agg.aggs[k] = v.Gather(sel)
			}
			for k, v := range agg.refs {
				agg.refs[k] = v.Gather(sel)
			}
			n = len(sel)
			ctx = &evalCtx{ex: ex, batch: &Batch{n: n}, aggs: agg.aggs, refs: agg.refs}
		}
	}

	items, _ := expandProjection(stmt, nil)
	for _, it := range items {
		if it.star {
			return nil, fmt.Errorf("SELECT * is not supported with GROUP BY or aggregates")
		}
	}
	var cols []*Vector
	var names []string
	for _, it := range items {
		v, err := ctx.eval(it.expr)
		if err != nil {
			return nil, err
		}
		cols = append(cols, v)
		names = append(names, it.name)
	}
	sortKeys, err := ex.orderKeyVectors(stmt, items, cols, ctx)
	if err != nil {
		return nil, err
	}
	return ex.epilogue(stmt, names, cols, sortKeys, n)
}

// orderKeyVectors evaluates the ORDER BY expressions: a bare reference
// naming a projection alias sorts by that output column, a numeric literal
// in range sorts by ordinal, everything else is evaluated in the current
// context.
func (ex *executor) orderKeyVectors(stmt *sqlparser.SelectStatement, items []projItem, cols []*Vector, ctx *evalCtx) ([]*Vector, error) {
	if len(stmt.OrderBy) == 0 {
		return nil, nil
	}
	// Map projection item index to output column index (stars expand ahead
	// of the computed columns).
	itemCol := make([]int, len(items))
	base := 0
	for _, it := range items {
		if it.star {
			base = -1 // star present: computed columns start after the star block
		}
	}
	if base == 0 {
		for i := range items {
			itemCol[i] = i
		}
	} else {
		starWidth := len(cols)
		nonStar := 0
		for _, it := range items {
			if !it.star {
				nonStar++
			}
		}
		starWidth -= nonStar
		next := starWidth
		for i, it := range items {
			if it.star {
				itemCol[i] = -1
				continue
			}
			itemCol[i] = next
			next++
		}
	}

	keys := make([]*Vector, len(stmt.OrderBy))
	for oi, ob := range stmt.OrderBy {
		if cr, ok := ob.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			matched := false
			for ii, it := range items {
				if !it.star && it.name == strings.ToLower(cr.Column) {
					keys[oi] = cols[itemCol[ii]]
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		if num, ok := ob.Expr.(*sqlparser.NumberLit); ok {
			idx := int(parseNumberScalar(num.Value).intVal()) - 1
			if idx >= 0 && idx < len(cols) {
				keys[oi] = cols[idx]
				continue
			}
		}
		v, err := ctx.eval(ob.Expr)
		if err != nil {
			return nil, err
		}
		keys[oi] = v
	}
	return keys, nil
}

// epilogue applies DISTINCT, ORDER BY and LIMIT/OFFSET to the projected
// columns and finishes the result.
func (ex *executor) epilogue(stmt *sqlparser.SelectStatement, names []string, cols []*Vector, sortKeys []*Vector, n int) (*Result, error) {
	if stmt.Distinct {
		seen := map[string]bool{}
		var keep []int
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.Reset()
			for _, c := range cols {
				appendRowKey(&sb, c, i)
				sb.WriteByte('|')
			}
			k := sb.String()
			if !seen[k] {
				seen[k] = true
				keep = append(keep, i)
			}
		}
		if len(keep) < n {
			cols = gatherAll(cols, keep)
			sortKeys = gatherAll(sortKeys, keep)
			n = len(keep)
		}
	}

	if len(stmt.OrderBy) > 0 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for i := range stmt.OrderBy {
				c := compareScalars(sortKeys[i].At(idx[a]), sortKeys[i].At(idx[b]))
				if c == 0 {
					continue
				}
				if stmt.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := false
		for i := range idx {
			if idx[i] != i {
				sorted = true
				break
			}
		}
		if sorted {
			cols = gatherAll(cols, idx)
		}
	}

	if stmt.Limit != nil || stmt.Offset != nil {
		start := 0
		if stmt.Offset != nil {
			start = int(*stmt.Offset)
		}
		end := n
		if stmt.Limit != nil && start+int(*stmt.Limit) < end {
			end = start + int(*stmt.Limit)
		}
		if start > n {
			start = n
		}
		keep := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			keep = append(keep, i)
		}
		cols = gatherAll(cols, keep)
		n = len(keep)
	}

	ex.stats.RowsReturned += int64(n)
	return &Result{Columns: names, Cols: cols}, nil
}

func gatherAll(cols []*Vector, rows []int) []*Vector {
	if cols == nil {
		return nil
	}
	out := make([]*Vector, len(cols))
	for i, c := range cols {
		out[i] = c.Gather(rows)
	}
	return out
}
