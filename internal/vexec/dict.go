package vexec

import "sort"

// Dictionary is the sorted, deduplicated value set of a dictionary-encoded
// string column. Codes index into Vals; because Vals is sorted and unique,
// code order is exactly lexicographic value order, so comparisons and ORDER
// BY can work on codes without materializing strings. A Dictionary is
// immutable after construction and shared by pointer: two vectors carry the
// same encoding if and only if their Dict pointers are equal.
type Dictionary struct {
	Vals []string
}

// Len returns the number of distinct values in the dictionary.
func (d *Dictionary) Len() int { return len(d.Vals) }

// Code returns the code of val and whether it is present. When absent, the
// returned code is the insertion point: every value with a smaller code
// sorts strictly below val and every value at or above it sorts strictly
// above, which is what the comparison fast paths need.
func (d *Dictionary) Code(val string) (uint32, bool) {
	i := sort.SearchStrings(d.Vals, val)
	return uint32(i), i < len(d.Vals) && d.Vals[i] == val
}

// DictMaxCardinality bounds dictionary encoding: a string column with more
// distinct non-NULL values than this stays raw (the unencoded fallback), so
// pathological high-cardinality columns degrade gracefully instead of
// building a dictionary as large as the data. Exported as a variable so
// tests can lower it to exercise the fallback cheaply.
var DictMaxCardinality = 1 << 20

// dictEncode returns a dictionary-encoded copy of a raw string vector, or
// the vector unchanged when encoding does not apply (non-string kind,
// already encoded, or cardinality above DictMaxCardinality). Null rows are
// preserved in the bitmap and carry code 0 so the codes array is always
// safe to index.
func dictEncode(v *Vector) *Vector {
	if v == nil || v.Kind != KindString || v.Dict != nil {
		return v
	}
	distinct := map[string]struct{}{}
	for i := 0; i < v.n; i++ {
		if v.IsNull(i) {
			continue
		}
		distinct[v.Strs[i]] = struct{}{}
		if len(distinct) > DictMaxCardinality {
			return v
		}
	}
	vals := make([]string, 0, len(distinct))
	for s := range distinct {
		vals = append(vals, s)
	}
	sort.Strings(vals)
	codeOf := make(map[string]uint32, len(vals))
	for i, s := range vals {
		codeOf[s] = uint32(i)
	}
	out := &Vector{Kind: KindString, n: v.n, Dict: &Dictionary{Vals: vals}, Codes: make([]uint32, v.n)}
	for i := 0; i < v.n; i++ {
		if v.IsNull(i) {
			out.SetNull(i)
			continue
		}
		out.Codes[i] = codeOf[v.Strs[i]]
	}
	return out
}

// decode materializes a dictionary-encoded vector back to raw strings; a
// vector without a dictionary is returned unchanged. Used at the result
// boundary (late materialization): execution stays on codes end to end and
// strings are rebuilt only for the rows that survive into the result.
func (v *Vector) decode() *Vector {
	if v == nil || v.Dict == nil {
		return v
	}
	out := &Vector{Kind: KindString, n: v.n, Strs: make([]string, v.n), Nulls: v.Nulls}
	for i := 0; i < v.n; i++ {
		if !v.IsNull(i) {
			out.Strs[i] = v.Dict.Vals[v.Codes[i]]
		}
	}
	return out
}

// StrAt returns the string payload of row i regardless of encoding. The
// caller is responsible for null-checking; null rows of an encoded vector
// return the dictionary value at code 0 (or "" on a raw vector).
func (v *Vector) StrAt(i int) string {
	if v.Dict != nil {
		return v.Dict.Vals[v.Codes[i]]
	}
	return v.Strs[i]
}
