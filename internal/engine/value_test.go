package engine

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndConversions(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null should be null")
	}
	if NewInt(42).Int() != 42 || NewInt(42).Float() != 42 {
		t.Error("int conversions wrong")
	}
	if NewFloat(2.5).Float() != 2.5 || NewFloat(2.5).Int() != 2 {
		t.Error("float conversions wrong")
	}
	if NewString("abc").String() != "abc" {
		t.Error("string round trip wrong")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("bool wrong")
	}
	if Null().Bool() {
		t.Error("null must not be truthy")
	}
	if NewString("3.5").Float() != 3.5 {
		t.Error("string to float conversion wrong")
	}
}

func TestCompareAndEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("apple"), NewString("banana"), -1},
		{NewDate(100), NewDate(99), 1},
		{NewInt(5), NewFloat(5.0), 0},
		{Null(), NewInt(1), -1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false in SQL semantics")
	}
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("3 should equal 3.0")
	}
}

func TestArithmetic(t *testing.T) {
	check := func(op string, a, b Value, want Value) {
		t.Helper()
		got, err := Arithmetic(op, a, b)
		if err != nil {
			t.Fatalf("Arithmetic(%s) error: %v", op, err)
		}
		if got.Kind != want.Kind || got.String() != want.String() {
			t.Errorf("Arithmetic(%v %s %v) = %v, want %v", a, op, b, got, want)
		}
	}
	check("+", NewInt(2), NewInt(3), NewInt(5))
	check("*", NewInt(4), NewInt(5), NewInt(20))
	check("-", NewFloat(1.5), NewFloat(0.5), NewFloat(1))
	check("/", NewInt(10), NewInt(4), NewFloat(2.5))
	check("/", NewInt(10), NewInt(5), NewInt(2))
	check("%", NewInt(10), NewInt(3), NewInt(1))
	check("+", NewDate(10), NewInt(5), NewDate(15))
	check("-", NewDate(10), NewDate(3), NewInt(7))
	check("||", NewString("a"), NewString("b"), NewString("ab"))

	if v, _ := Arithmetic("/", NewInt(1), NewInt(0)); !v.IsNull() {
		t.Error("division by zero should be NULL")
	}
	if v, _ := Arithmetic("+", Null(), NewInt(1)); !v.IsNull() {
		t.Error("NULL arithmetic should be NULL")
	}
	if _, err := Arithmetic("*", NewString("x"), NewInt(1)); err == nil {
		t.Error("string multiplication should error")
	}
}

func TestDates(t *testing.T) {
	d, err := ParseDate("1998-12-01")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(d) != "1998-12-01" {
		t.Errorf("date round trip = %s", FormatDate(d))
	}
	y, m, day := DateParts(d)
	if y != 1998 || m != 12 || day != 1 {
		t.Errorf("DateParts = %d-%d-%d", y, m, day)
	}
	minus90, err := AddInterval(d, -90, "DAY")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(minus90) != "1998-09-02" {
		t.Errorf("1998-12-01 - 90 days = %s", FormatDate(minus90))
	}
	plus3m, _ := AddInterval(MustParseDate("1993-07-01"), 3, "MONTH")
	if FormatDate(plus3m) != "1993-10-01" {
		t.Errorf("+3 months = %s", FormatDate(plus3m))
	}
	plus1y, _ := AddInterval(MustParseDate("1994-01-01"), 1, "YEAR")
	if FormatDate(plus1y) != "1995-01-01" {
		t.Errorf("+1 year = %s", FormatDate(plus1y))
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("invalid date should fail")
	}
	if _, err := AddInterval(d, 1, "HOUR"); err == nil {
		t.Error("unknown interval unit should fail")
	}
}

func TestDatePropertyRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		days := int64(n) // 0 .. ~179 years after 1970 stays in range
		return MustParseDate(FormatDate(days)) == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"ECONOMY ANODIZED STEEL", "%BRASS", false},
		{"LARGE POLISHED BRASS", "%BRASS", true},
		{"PROMO BURNISHED COPPER", "PROMO%", true},
		{"MEDIUM POLISHED TIN", "MEDIUM POLISHED%", true},
		{"standard", "st_ndard", true},
		{"standard", "st_ndXrd", false},
		{"forest green thing", "forest%", true},
		{"a special request here", "%special%requests%", false},
		{"a special requests here", "%special%requests%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "abc", true},
		{"abc", "ab", false},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	if NewInt(1).Key() == NewString("1").Key() {
		t.Error("int 1 and string '1' must have different keys")
	}
	if NewInt(5).Key() != NewFloat(5).Key() {
		t.Error("numeric 5 and 5.0 should share a key for joins")
	}
	if NewDate(3).Key() == NewInt(3).Key() {
		t.Error("date and int keys should differ")
	}
}

func TestTableSchemaEnforcement(t *testing.T) {
	tbl := NewTable("t",
		Column{Name: "a", Type: TypeInt},
		Column{Name: "b", Type: TypeString},
	)
	if err := tbl.AppendRow(NewInt(1), NewString("x")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(NewInt(1)); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := tbl.AppendRow(NewString("bad"), NewString("x")); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := tbl.AppendRow(Null(), Null()); err != nil {
		t.Errorf("nulls should be accepted: %v", err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", tbl.NumRows())
	}
	if tbl.ColumnIndex("B") != 1 || tbl.ColumnIndex("missing") != -1 {
		t.Error("column index lookup wrong")
	}
	row := tbl.Row(0)
	if row[0].I != 1 || row[1].S != "x" {
		t.Errorf("Row(0) = %v", row)
	}
	if tbl.EstimatedBytes() <= 0 {
		t.Error("estimated bytes should be positive")
	}
}

func TestDatabaseOperations(t *testing.T) {
	db := NewDatabase("test")
	db.AddTable(NewTable("alpha", Column{Name: "x", Type: TypeInt}))
	db.AddTable(NewTable("beta", Column{Name: "y", Type: TypeInt}))
	if db.Table("ALPHA") == nil {
		t.Error("table lookup should be case insensitive")
	}
	if db.Table("gamma") != nil {
		t.Error("unknown table should be nil")
	}
	tables := db.Tables()
	if len(tables) != 2 || tables[0].Name != "alpha" {
		t.Errorf("Tables() = %v", tables)
	}
	if db.Describe() == "" {
		t.Error("Describe should render something")
	}
}
