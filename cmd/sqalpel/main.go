// Command sqalpel is the experiment driver, the Go counterpart of the
// paper's sqalpel.py: it reads a local configuration file, asks the platform
// server for tasks from a project's query pool, runs them against the local
// DBMS (here: one of the built-in engines over a generated data set) and
// reports the measurements back.
//
// Usage:
//
//	sqalpel -config sqalpel.conf -dataset tpch -sf 0.01 -max 0
//
// The configuration file format is documented in internal/driver:
//
//	server  = http://localhost:8080
//	key     = <contributor key>
//	dbms    = columba-1.0
//	platform = laptop
//	experiment = 1
//	runs = 5
//	workers = 4
//
// With workers > 1 (from the configuration file or the -workers flag) the
// driver leases tasks in batches and measures them concurrently, so several
// drivers can crowd-source one experiment without double-measuring.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"sqalpel/internal/core"
	"sqalpel/internal/datagen"
	"sqalpel/internal/driver"
	"sqalpel/internal/engine"
)

func main() {
	configPath := flag.String("config", "sqalpel.conf", "driver configuration file")
	dataset := flag.String("dataset", "tpch", "local data set to run against: tpch, ssb or airtraffic")
	sf := flag.Float64("sf", 0.01, "scale factor of the local data set")
	maxTasks := flag.Int("max", 0, "maximum number of tasks to process (0 = until the pool is exhausted)")
	workers := flag.Int("workers", 0, "concurrent measurement workers (0 = take from the config file)")
	batch := flag.Int("batch", 0, "tasks to lease per request (0 = worker count)")
	flag.Parse()

	cfg, err := driver.LoadConfig(*configPath)
	if err != nil {
		log.Fatalf("loading configuration: %v", err)
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	client, err := driver.NewClient(cfg)
	if err != nil {
		log.Fatal(err)
	}

	db, err := datagen.NamedDatabase(*dataset, *sf)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engineForKey(cfg.DBMS)
	if err != nil {
		log.Fatal(err)
	}
	target := &core.EngineTarget{Engine: eng, DB: db, Timeout: cfg.Timeout}

	fmt.Printf("sqalpel driver: %s on %s, data set %s sf %g, %d runs per query, %d workers\n",
		cfg.DBMS, cfg.Platform, *dataset, *sf, cfg.Runs, cfg.Workers)
	start := time.Now()
	n, err := client.RunAll(target, *maxTasks)
	if err != nil {
		log.Fatalf("after %d tasks: %v", n, err)
	}
	fmt.Printf("processed %d tasks in %s\n", n, time.Since(start).Round(time.Millisecond))
}

// engineForKey maps a DBMS catalog key to a built-in engine.
func engineForKey(key string) (engine.Engine, error) {
	reg := engine.NewRegistry()
	if e := reg.Get(key); e != nil {
		return e, nil
	}
	// Accept bare names without a version.
	for _, e := range reg.Engines() {
		if strings.EqualFold(e.Name(), key) {
			return e, nil
		}
	}
	return nil, fmt.Errorf("unknown DBMS %q; available: %s", key, strings.Join(reg.Keys(), ", "))
}
