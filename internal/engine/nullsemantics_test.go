package engine

import (
	"strings"
	"testing"
)

// nullDB is a tiny table with NULL-rich columns used to pin the ternary
// NULL semantics contract (see internal/sqlsem) on every engine.
//
//	id | a    | s
//	 1 | 1    | alpha
//	 2 | 2    | NULL
//	 3 | NULL | beta
//	 4 | 4    | NULL
//	 5 | NULL | gamma
//	 6 | 6    | alto
func nullDB() *Database {
	db := NewDatabase("nulls")
	t := NewTable("t",
		Column{Name: "id", Type: TypeInt},
		Column{Name: "a", Type: TypeInt},
		Column{Name: "s", Type: TypeString},
	)
	rows := []struct {
		id int64
		a  Value
		s  Value
	}{
		{1, NewInt(1), NewString("alpha")},
		{2, NewInt(2), Null()},
		{3, Null(), NewString("beta")},
		{4, NewInt(4), Null()},
		{5, Null(), NewString("gamma")},
		{6, NewInt(6), NewString("alto")},
	}
	for _, r := range rows {
		t.MustAppendRow(NewInt(r.id), r.a, r.s)
	}
	db.AddTable(t)
	return db
}

// runAllEngines executes the query on all five registry engines and asserts
// they return bit-identical results; the first engine's result is returned.
func runAllEngines(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	reg := NewRegistry()
	var first *Result
	var firstKey string
	for _, key := range reg.Keys() {
		res, err := reg.Get(key).Execute(db, sql, ExecOptions{})
		if err != nil {
			t.Fatalf("%s failed on %q: %v", key, sql, err)
		}
		if first == nil {
			first, firstKey = res, key
			continue
		}
		if got, want := renderRows(res), renderRows(first); got != want {
			t.Fatalf("%s diverges from %s on %q:\n%s\nvs\n%s", key, firstKey, sql, got, want)
		}
	}
	return first
}

func renderRows(r *Result) string {
	var sb strings.Builder
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		sb.WriteString(strings.Join(parts, "|"))
		sb.WriteString("\n")
	}
	return sb.String()
}

// expectRows asserts the rendered result matches want (one row per entry,
// columns joined with |).
func expectRows(t *testing.T, sql string, res *Result, want []string) {
	t.Helper()
	got := renderRows(res)
	exp := strings.Join(want, "\n")
	if len(want) > 0 {
		exp += "\n"
	}
	if got != exp {
		t.Errorf("%q:\ngot:\n%swant:\n%s", sql, got, exp)
	}
}

// TestNullComparisonProjection pins the ternary comparison contract in
// projection position: NULL operands surface as NULL, and NOT over an
// UNKNOWN comparison stays UNKNOWN on every paradigm.
func TestNullComparisonProjection(t *testing.T) {
	db := nullDB()

	sql := "SELECT id, NOT (a = 2) AS p FROM t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|true", "2|false", "3|NULL", "4|true", "5|NULL", "6|true",
	})

	sql = "SELECT id, a = 2 AS p, a <> 2 AS q, a < 3 AS r FROM t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|false|true|true",
		"2|true|false|true",
		"3|NULL|NULL|NULL",
		"4|false|true|false",
		"5|NULL|NULL|NULL",
		"6|false|true|false",
	})
}

// TestNullComparisonFilter pins the filter collapse: UNKNOWN rejects the
// row, so NOT (a = 2) keeps only rows where a is non-NULL and differs.
func TestNullComparisonFilter(t *testing.T) {
	db := nullDB()
	sql := "SELECT id FROM t WHERE NOT (a = 2) ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1", "4", "6"})
}

// TestNullLike pins NULL LIKE / NOT LIKE as NULL in projection and as a
// rejected row in filter position.
func TestNullLike(t *testing.T) {
	db := nullDB()

	sql := "SELECT id, s NOT LIKE 'al%' AS p FROM t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|false", "2|NULL", "3|true", "4|NULL", "5|true", "6|false",
	})

	sql = "SELECT id FROM t WHERE s NOT LIKE 'al%' ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"3", "5"})
}

// TestNullIn pins IN-list semantics: a found match is TRUE, a miss against
// a list containing NULL is UNKNOWN, a NULL probe is UNKNOWN, and NOT IN
// negates ternarily.
func TestNullIn(t *testing.T) {
	db := nullDB()

	sql := "SELECT id, a IN (1, 9, NULL) AS p FROM t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|true", "2|NULL", "3|NULL", "4|NULL", "5|NULL", "6|NULL",
	})

	sql = "SELECT id, a NOT IN (1, 9, NULL) AS p FROM t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|false", "2|NULL", "3|NULL", "4|NULL", "5|NULL", "6|NULL",
	})

	// Without a NULL in the list, misses are definite FALSE again.
	sql = "SELECT id, a IN (1, 9) AS p FROM t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|true", "2|false", "3|NULL", "4|false", "5|NULL", "6|false",
	})

	sql = "SELECT id FROM t WHERE a IN (1, 9, NULL) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1"})
}

// TestNullInSubquery pins the sub-query variants: an empty result set is
// FALSE even for a NULL probe, and a NULL-bearing set turns misses into
// UNKNOWN.
func TestNullInSubquery(t *testing.T) {
	db := nullDB()

	// Sub-query result {1, 2, NULL, 4, NULL, 6}: misses become UNKNOWN.
	sql := "SELECT id, a NOT IN (SELECT a FROM t) AS p FROM t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|false", "2|false", "3|NULL", "4|false", "5|NULL", "6|false",
	})

	// Empty sub-query: FALSE for every probe, NULL probes included.
	sql = "SELECT id, a IN (SELECT a FROM t WHERE a > 100) AS p FROM t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|false", "2|false", "3|false", "4|false", "5|false", "6|false",
	})
}

// TestNullBetween pins BETWEEN as the ternary AND of its two comparisons.
func TestNullBetween(t *testing.T) {
	db := nullDB()

	sql := "SELECT id, a BETWEEN 2 AND 4 AS p, a NOT BETWEEN 2 AND 4 AS q FROM t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|false|true",
		"2|true|false",
		"3|NULL|NULL",
		"4|true|false",
		"5|NULL|NULL",
		"6|false|true",
	})

	// A NULL bound can still produce a definite answer when the other
	// comparison already fails: 6 > 4 makes BETWEEN NULL AND 4 FALSE.
	sql = "SELECT id, a BETWEEN NULL AND 4 AS p FROM t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|NULL", "2|NULL", "3|NULL", "4|NULL", "5|NULL", "6|false",
	})

	sql = "SELECT id FROM t WHERE a BETWEEN 2 AND 4 ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"2", "4"})
}

// TestNullAndOrCase pins the ternary connectives and CASE arm collapse in
// both projection and filter position.
func TestNullAndOrCase(t *testing.T) {
	db := nullDB()

	sql := "SELECT id, (a = 2) AND (s = 'beta') AS p, (a = 2) OR (s = 'beta') AS q FROM t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		// a=1,s=alpha: F AND F / F OR F
		"1|false|false",
		// a=2,s=NULL: T AND U = U / T OR U = T
		"2|NULL|true",
		// a=NULL,s=beta: U AND T = U / U OR T = T
		"3|NULL|true",
		// a=4,s=NULL: F AND U = F / F OR U = U
		"4|false|NULL",
		// a=NULL,s=gamma: U AND F = F / U OR F = U
		"5|false|NULL",
		// a=6,s=alto: F AND F / F OR F
		"6|false|false",
	})

	// CASE WHEN collapses UNKNOWN conditions to "arm not taken".
	sql = "SELECT id, CASE WHEN a = 2 THEN 'two' WHEN a > 3 THEN 'big' ELSE 'rest' END AS c FROM t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|rest", "2|two", "3|rest", "4|big", "5|rest", "6|big",
	})

	// NULL THEN-arm value flows through as NULL.
	sql = "SELECT id, CASE WHEN a = 2 THEN NULL ELSE 'rest' END AS c FROM t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{
		"1|rest", "2|NULL", "3|rest", "4|rest", "5|rest", "6|rest",
	})

	sql = "SELECT id FROM t WHERE (a = 2) OR (s = 'beta') ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"2", "3"})

	sql = "SELECT id FROM t WHERE (a > 1) AND (s LIKE 'a%') ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"6"})
}

// TestNullJoinKeys pins the join side of the contract: an equi-join key
// that is NULL compares UNKNOWN against everything, so it never matches —
// NULL keys must not bucket together in the hash-join paths. Grouping and
// DISTINCT keep the opposite (standard) behaviour: NULLs collapse into one
// group.
func TestNullJoinKeys(t *testing.T) {
	db := NewDatabase("nulljoin")
	t1 := NewTable("t1", Column{Name: "x", Type: TypeInt})
	for _, v := range []Value{NewInt(1), Null(), NewInt(2)} {
		t1.MustAppendRow(v)
	}
	db.AddTable(t1)
	t2 := NewTable("t2", Column{Name: "y", Type: TypeInt})
	for _, v := range []Value{NewInt(1), Null(), NewInt(3)} {
		t2.MustAppendRow(v)
	}
	db.AddTable(t2)

	sql := "SELECT x, y FROM t1, t2 WHERE x = y"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1|1"})

	// LEFT JOIN: the NULL-key left row survives null-extended, it just
	// never matches.
	sql = "SELECT x, y FROM t1 LEFT JOIN t2 ON x = y ORDER BY x"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"NULL|NULL", "1|1", "2|NULL"})
}

// TestNullGroupingCollapses pins the deliberate asymmetry to joins:
// GROUP BY and DISTINCT treat all NULLs as one group.
func TestNullGroupingCollapses(t *testing.T) {
	db := nullDB()

	sql := "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY a"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"NULL|2", "1|1", "2|1", "4|1", "6|1"})

	sql = "SELECT DISTINCT a FROM t ORDER BY a"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"NULL", "1", "2", "4", "6"})
}

// TestNullLiteralPredicates pins predicates over a bare NULL literal.
func TestNullLiteralPredicates(t *testing.T) {
	db := nullDB()

	sql := "SELECT id, NULL = 1 AS p, NULL BETWEEN 1 AND 2 AS q, NOT NULL AS r FROM t WHERE id = 1"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1|NULL|NULL|NULL"})

	sql = "SELECT id, NULL NOT LIKE 'a%' AS p FROM t WHERE id = 1"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1|NULL"})
}
