// Package discriminative implements the paper's central search: given two
// (or more) target systems that accept the same SQL dialect, find the
// queries in a project's query space that run relatively better on one
// system than on the other. The search measures the current pool, ranks
// queries by their performance ratio, and grows the pool by morphing the
// most discriminative queries found so far — the guided random walk of the
// paper — rather than sampling the space blindly.
//
// Measurement is delegated to the concurrent scheduler (internal/sched):
// every round fans its pending (entry, target) cells across a worker pool
// sized by Options.Parallelism, while the walk itself — ranking, morphing,
// random growth — stays strictly sequential and seeded, so the findings are
// bit-identical at Parallelism=1 and Parallelism=N.
package discriminative

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"sqalpel/internal/metrics"
	"sqalpel/internal/pool"
	"sqalpel/internal/sched"
	"sqalpel/internal/trace"
)

// Outcome is the measurement of one pool entry on every target.
type Outcome struct {
	Entry *pool.Entry
	// ByTarget maps target name to its measurement.
	ByTarget map[string]*metrics.Measurement
}

// Failed reports whether the query failed on any target.
func (o *Outcome) Failed() bool {
	//lint:ordered existence scan; any iteration order yields the same boolean
	for _, m := range o.ByTarget {
		if m.Failed() {
			return true
		}
	}
	return false
}

// Seconds returns the representative (minimum) execution time on the target
// in seconds, or NaN when the target failed or was not measured.
func (o *Outcome) Seconds(target string) float64 {
	m, ok := o.ByTarget[target]
	if !ok || m.Failed() || len(m.Runs) == 0 {
		return math.NaN()
	}
	return m.Min().Seconds()
}

// Ratio returns time(a)/time(b): values above 1 mean the query runs faster
// on b, values below 1 mean it runs faster on a. NaN when either target
// failed or reported a zero time — a zero wall-clock measurement is below
// the clock's resolution on either side of the fraction, so neither
// direction can support a meaningful ratio.
func (o *Outcome) Ratio(a, b string) float64 {
	ta, tb := o.Seconds(a), o.Seconds(b)
	if math.IsNaN(ta) || math.IsNaN(tb) || ta == 0 || tb == 0 {
		return math.NaN()
	}
	return ta / tb
}

// Finding is one discriminative query: an outcome together with the ratio
// that makes it interesting.
type Finding struct {
	Outcome *Outcome
	// Ratio is time(SystemA)/time(SystemB) for the pair the search was asked
	// about.
	Ratio float64
}

// Options configure the search.
type Options struct {
	// Runs is the number of repetitions per measurement (default 5).
	Runs int
	// GrowPerRound is how many new pool entries each round adds (default 8).
	GrowPerRound int
	// TopK is how many extreme queries each round morphs from (default 3).
	TopK int
	// Parallelism is the total concurrency budget of the measurement
	// plane; 0 or 1 measures serially. With Parallelism > 1 every target
	// must be safe for concurrent use.
	Parallelism int
	// QueryParallelism is the intra-query morsel worker count each
	// measured execution spends (the caller configures its targets to
	// match); the scheduler divides the Parallelism budget by it, floored
	// at one measurement worker, so the two levels of parallelism share
	// one cap (see sched.Options.QueryParallelism for the floor case).
	QueryParallelism int
	// Timeout bounds a single query repetition; zero means no limit.
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = metrics.DefaultRuns
	}
	if o.GrowPerRound <= 0 {
		o.GrowPerRound = 8
	}
	if o.TopK <= 0 {
		o.TopK = 3
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	return o
}

// Search drives the guided walk over one pool and a set of targets.
type Search struct {
	pool     *pool.Pool
	targets  map[string]metrics.Target
	names    []string
	opts     Options
	sched    *sched.Scheduler
	outcomes map[int]*Outcome // keyed by pool entry id
}

// New creates a search over the pool and the named targets.
func New(p *pool.Pool, targets map[string]metrics.Target, opts Options) (*Search, error) {
	if len(targets) < 2 {
		return nil, fmt.Errorf("discriminative search needs at least two targets, got %d", len(targets))
	}
	names := make([]string, 0, len(targets))
	for n := range targets {
		names = append(names, n)
	}
	sort.Strings(names)
	opts = opts.withDefaults()
	return &Search{
		pool:     p,
		targets:  targets,
		names:    names,
		opts:     opts,
		sched:    sched.New(sched.Options{Workers: opts.Parallelism, QueryParallelism: opts.QueryParallelism, Timeout: opts.Timeout}),
		outcomes: map[int]*Outcome{},
	}, nil
}

// Scheduler exposes the measurement scheduler (for cache statistics).
func (s *Search) Scheduler() *sched.Scheduler { return s.sched }

// Pool returns the underlying pool.
func (s *Search) Pool() *pool.Pool { return s.pool }

// Targets returns the target names in deterministic order.
func (s *Search) Targets() []string { return append([]string(nil), s.names...) }

// Outcomes returns all measured outcomes in pool-entry order.
func (s *Search) Outcomes() []*Outcome {
	var out []*Outcome
	for _, e := range s.pool.Entries() {
		if o, ok := s.outcomes[e.ID]; ok {
			out = append(out, o)
		}
	}
	return out
}

// MeasureEntry measures one pool entry on every target (if not already
// measured) and returns the outcome.
func (s *Search) MeasureEntry(e *pool.Entry) *Outcome {
	if o, ok := s.outcomes[e.ID]; ok {
		return o
	}
	return s.measureEntries(context.Background(), []*pool.Entry{e})[0]
}

// MeasurePending measures every pool entry that has not been measured yet
// and returns the new outcomes.
func (s *Search) MeasurePending() []*Outcome {
	return s.MeasurePendingContext(context.Background())
}

// MeasurePendingContext is MeasurePending with cancellation: entries whose
// measurement was cut short by the context come back as failed outcomes.
func (s *Search) MeasurePendingContext(ctx context.Context) []*Outcome {
	var pending []*pool.Entry
	for _, e := range s.pool.Entries() {
		if _, ok := s.outcomes[e.ID]; ok {
			continue
		}
		pending = append(pending, e)
	}
	return s.measureEntries(ctx, pending)
}

// measureEntries fans the (entry, target) cells of the given entries across
// the scheduler's worker pool and assembles the outcomes in entry order.
// The scheduler's result cache makes morphs that collapse onto an already
// measured SQL text free.
func (s *Search) measureEntries(ctx context.Context, entries []*pool.Entry) []*Outcome {
	if len(entries) == 0 {
		return nil
	}
	cells := make([]sched.Cell, 0, len(entries)*len(s.names))
	for _, e := range entries {
		for _, name := range s.names {
			cells = append(cells, sched.Cell{
				Target: name,
				Runner: s.targets[name],
				SQL:    e.SQL,
				Runs:   s.opts.Runs,
			})
		}
	}
	results := s.sched.Measure(ctx, cells)
	cancelled := ctx.Err() != nil
	out := make([]*Outcome, 0, len(entries))
	for i, e := range entries {
		o := &Outcome{Entry: e, ByTarget: map[string]*metrics.Measurement{}}
		for j, name := range s.names {
			o.ByTarget[name] = results[i*len(s.names)+j].Measurement
		}
		// A failure during a cancelled run says nothing about the query:
		// don't record it, so a later un-cancelled call measures the entry
		// again (the scheduler evicts those cells from its cache too; the
		// targets that did complete stay cached and are free to replay).
		if !(cancelled && o.Failed()) {
			s.outcomes[e.ID] = o
		}
		out = append(out, o)
	}
	return out
}

// Round measures everything pending, then grows the pool guided by the most
// discriminative outcomes found so far: the top queries in both directions
// are morphed with alter/expand/prune, and the remainder of the budget is
// spent on random growth so the walk keeps exploring.
func (s *Search) Round(a, b string) []*Outcome {
	return s.RoundContext(context.Background(), a, b)
}

// RoundContext is Round with cancellation.
func (s *Search) RoundContext(ctx context.Context, a, b string) []*Outcome {
	newOutcomes := s.MeasurePendingContext(ctx)

	extremes := append(s.Better(a, b, s.opts.TopK), s.Better(b, a, s.opts.TopK)...)
	added := 0
	for _, f := range extremes {
		if added >= s.opts.GrowPerRound {
			break
		}
		src := f.Outcome.Entry
		for _, morph := range []func(*pool.Entry) (*pool.Entry, error){s.pool.AlterFrom, s.pool.PruneFrom, s.pool.ExpandFrom} {
			if added >= s.opts.GrowPerRound {
				break
			}
			if _, err := morph(src); err == nil {
				added++
			}
		}
	}
	if added < s.opts.GrowPerRound {
		s.pool.Grow(s.opts.GrowPerRound - added)
	}
	return newOutcomes
}

// Run performs the given number of rounds comparing targets a and b and
// returns every outcome measured so far.
func (s *Search) Run(a, b string, rounds int) []*Outcome {
	return s.RunContext(context.Background(), a, b, rounds)
}

// RunContext is Run with cancellation: the walk stops growing once the
// context is done and returns what was measured so far.
func (s *Search) RunContext(ctx context.Context, a, b string, rounds int) []*Outcome {
	for i := 0; i < rounds && ctx.Err() == nil; i++ {
		s.RoundContext(ctx, a, b)
	}
	if ctx.Err() == nil {
		s.MeasurePendingContext(ctx)
	}
	return s.Outcomes()
}

// Better returns the topN queries that run relatively better on target
// `fast` than on target `slow`, sorted by how extreme the ratio is. Failed
// queries are skipped.
func (s *Search) Better(fast, slow string, topN int) []Finding {
	var findings []Finding
	for _, o := range s.Outcomes() {
		if o.Failed() {
			continue
		}
		// ratio = time(slow)/time(fast): the larger, the better `fast` looks.
		r := o.Ratio(slow, fast)
		if math.IsNaN(r) || r <= 1 {
			continue
		}
		findings = append(findings, Finding{Outcome: o, Ratio: r})
	}
	// Stable ranking: break ratio ties on the pool entry id so the ordering
	// is identical however the measurements were scheduled.
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Ratio != findings[j].Ratio {
			return findings[i].Ratio > findings[j].Ratio
		}
		return findings[i].Outcome.Entry.ID < findings[j].Outcome.Entry.ID
	})
	if topN > 0 && len(findings) > topN {
		findings = findings[:topN]
	}
	return findings
}

// MatrixCell is one ordered pair of the discrimination matrix: how many
// measured queries run relatively better on Fast than on Slow, and the most
// extreme one.
type MatrixCell struct {
	Fast  string
	Slow  string
	Count int
	// Best is the most discriminative finding of the pair; nil when no
	// query separates it.
	Best *Finding
}

// Matrix computes the full pairwise discrimination matrix over every
// registered target. With three engine paradigms registered this is the
// three-way separation table: each paradigm pair gets both directions.
func (s *Search) Matrix() []MatrixCell {
	var out []MatrixCell
	for _, a := range s.names {
		for _, b := range s.names {
			if a == b {
				continue
			}
			findings := s.Better(a, b, 0)
			cell := MatrixCell{Fast: a, Slow: b, Count: len(findings)}
			if len(findings) > 0 {
				f := findings[0]
				cell.Best = &f
			}
			out = append(out, cell)
		}
	}
	return out
}

// OperatorRatio is one row of the operator-level attribution table: the
// wall-clock time two targets spent in one class of plan operator, summed
// over every outcome where both targets reported a trace. It pushes the
// paper's query-level performance ratio one level down — instead of "query
// Q is 3x faster on B", it says which operator the difference lives in.
type OperatorRatio struct {
	// Kind is the operator kind (trace.KindScan, trace.KindHashJoin, ...).
	Kind string
	// SecondsA and SecondsB are the total wall-clock seconds targets a and b
	// spent in operators of this kind.
	SecondsA float64
	SecondsB float64
	// Ratio is SecondsA/SecondsB; NaN when either side is zero.
	Ratio float64
	// Spans is the number of span pairs aggregated into the row.
	Spans int
	// Outcomes is the number of traced outcomes contributing to the row.
	Outcomes int
}

// OperatorRatios aggregates operator span wall-time by kind across every
// measured outcome where both targets carry a trace, and ranks the rows by
// how lopsided the ratio is (max(r, 1/r), descending; ties break on the
// kind name so the table is deterministic). Outcomes where either target
// failed, was untraced, or measured without tracing enabled contribute
// nothing.
func (s *Search) OperatorRatios(a, b string) []OperatorRatio {
	type acc struct {
		nsA, nsB int64
		spans    int
		outcomes int
	}
	byKind := map[string]*acc{}
	for _, o := range s.Outcomes() {
		if o.Failed() {
			continue
		}
		ma, mb := o.ByTarget[a], o.ByTarget[b]
		if ma == nil || mb == nil || ma.Trace == nil || mb.Trace == nil {
			continue
		}
		touched := map[string]bool{}
		for _, row := range trace.Compare([]*trace.QueryTrace{ma.Trace, mb.Trace}) {
			sa, sb := row.Spans[0], row.Spans[1]
			kind := row.Kind
			c := byKind[kind]
			if c == nil {
				c = &acc{}
				byKind[kind] = c
			}
			if sa != nil {
				c.nsA += sa.WallNS
			}
			if sb != nil {
				c.nsB += sb.WallNS
			}
			c.spans++
			if !touched[kind] {
				touched[kind] = true
				c.outcomes++
			}
		}
	}
	out := make([]OperatorRatio, 0, len(byKind))
	//lint:ordered rows are given a total order by the Kind sort below before returning
	for kind, c := range byKind {
		r := OperatorRatio{
			Kind:     kind,
			SecondsA: float64(c.nsA) / 1e9,
			SecondsB: float64(c.nsB) / 1e9,
			Ratio:    math.NaN(),
			Spans:    c.spans,
			Outcomes: c.outcomes,
		}
		if c.nsA > 0 && c.nsB > 0 {
			r.Ratio = float64(c.nsA) / float64(c.nsB)
		}
		out = append(out, r)
	}
	lopsided := func(r float64) float64 {
		if math.IsNaN(r) {
			return 0 // unratioable rows sink to the bottom
		}
		return math.Max(r, 1/r)
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := lopsided(out[i].Ratio), lopsided(out[j].Ratio)
		if li != lj {
			return li > lj
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// OperatorBreakdown is one row of a single outcome's per-operator
// comparison: the same plan operator (by id) seen through two targets'
// traces.
type OperatorBreakdown struct {
	// OpID is the shared plan operator id the spans key on.
	OpID string
	// Kind is the operator kind.
	Kind string
	// NanosA/NanosB are the wall-clock nanoseconds each target spent in the
	// operator; -1 when the target reported no span for the id (its
	// execution strategy has no corresponding operator, e.g. interpreters
	// fold pushdown filters into the residual filter).
	NanosA int64
	NanosB int64
	// RowsA/RowsB are the operator's row counts under each target; -1 when
	// the span is absent.
	RowsA int64
	RowsB int64
	// Ratio is NanosA/NanosB; NaN when either span is absent or zero.
	Ratio float64
}

// Breakdown compares one outcome's traces operator by operator, in the
// plan's operator-id order. Nil when either target lacks a trace.
func Breakdown(o *Outcome, a, b string) []OperatorBreakdown {
	ma, mb := o.ByTarget[a], o.ByTarget[b]
	if ma == nil || mb == nil || ma.Trace == nil || mb.Trace == nil {
		return nil
	}
	rows := trace.Compare([]*trace.QueryTrace{ma.Trace, mb.Trace})
	out := make([]OperatorBreakdown, 0, len(rows))
	for _, row := range rows {
		d := OperatorBreakdown{
			OpID: row.OpID, Kind: row.Kind,
			NanosA: -1, NanosB: -1, RowsA: -1, RowsB: -1,
			Ratio: math.NaN(),
		}
		if sa := row.Spans[0]; sa != nil {
			d.NanosA, d.RowsA = sa.WallNS, sa.Rows
		}
		if sb := row.Spans[1]; sb != nil {
			d.NanosB, d.RowsB = sb.WallNS, sb.Rows
		}
		if d.NanosA > 0 && d.NanosB > 0 {
			d.Ratio = float64(d.NanosA) / float64(d.NanosB)
		}
		out = append(out, d)
	}
	return out
}

// Errors returns the outcomes whose query failed on at least one target;
// they show up as error entries in the experiment history.
func (s *Search) Errors() []*Outcome {
	var out []*Outcome
	for _, o := range s.Outcomes() {
		if o.Failed() {
			out = append(out, o)
		}
	}
	return out
}

// Summary is a compact textual report of the search state.
func (s *Search) Summary(a, b string) string {
	measured := len(s.Outcomes())
	errors := len(s.Errors())
	bestA := s.Better(a, b, 1)
	bestB := s.Better(b, a, 1)
	out := fmt.Sprintf("pool %d queries, %d measured, %d errors", s.pool.Size(), measured, errors)
	if len(bestA) > 0 {
		out += fmt.Sprintf("; best for %s: %.2fx (#%d)", a, bestA[0].Ratio, bestA[0].Outcome.Entry.ID)
	}
	if len(bestB) > 0 {
		out += fmt.Sprintf("; best for %s: %.2fx (#%d)", b, bestB[0].Ratio, bestB[0].Outcome.Entry.ID)
	}
	return out
}
