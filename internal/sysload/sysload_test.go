package sysload

import (
	"strings"
	"testing"
)

func TestParseProcLoadavg(t *testing.T) {
	l, ok := ParseProcLoadavg("0.42 0.36 0.30 1/123 456\n")
	if !ok {
		t.Fatal("expected parse to succeed")
	}
	if l.Avg1 != 0.42 || l.Avg5 != 0.36 || l.Avg15 != 0.30 {
		t.Errorf("parsed = %+v", l)
	}
	if l.Source != "proc" {
		t.Errorf("source = %q", l.Source)
	}
	if _, ok := ParseProcLoadavg("garbage"); ok {
		t.Error("garbage should not parse")
	}
	if _, ok := ParseProcLoadavg("a b c"); ok {
		t.Error("non numeric fields should not parse")
	}
}

func TestSampleNeverFails(t *testing.T) {
	l := Sample()
	if l.Source != "proc" && l.Source != "runtime" {
		t.Errorf("unexpected source %q", l.Source)
	}
	if l.Avg1 < 0 {
		t.Errorf("negative load %f", l.Avg1)
	}
	if !strings.Contains(l.String(), l.Source) {
		t.Errorf("String() = %q should mention the source", l.String())
	}
	m := l.Map()
	for _, key := range []string{"load_avg_1", "load_avg_5", "load_avg_15", "load_source"} {
		if _, ok := m[key]; !ok {
			t.Errorf("Map() missing %s", key)
		}
	}
}

func TestSampleFallsBackWithoutProc(t *testing.T) {
	old := procLoadavgPath
	procLoadavgPath = "/nonexistent/loadavg"
	defer func() { procLoadavgPath = old }()
	l := Sample()
	if l.Source != "runtime" {
		t.Errorf("expected runtime fallback, got %q", l.Source)
	}
}
