package vexec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"sqalpel/internal/plan"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/sqlsem"
)

// evalCtx evaluates expressions over one batch. In grouped context the
// batch rows are groups: aggs maps canonical aggregate SQL text to the
// per-group aggregate column and refs maps column reference keys to the
// per-group first-row columns; both are nil in row context.
type evalCtx struct {
	ex    *executor
	batch *Batch
	aggs  map[string]*Vector
	refs  map[string]*Vector
}

func refKey(table, col string) string {
	return strings.ToLower(table) + "." + strings.ToLower(col)
}

// errEval wraps evaluation failures with the failing expression.
func errEval(e sqlparser.Expr, err error) error {
	return fmt.Errorf("evaluating %q: %w", e.SQL(), err)
}

// deferToFallback marks runtime errors raised in conditionally-evaluated
// contexts (filter conjuncts, AND/OR arms, CASE arms, IN list items) as
// ErrUnsupported. Vectorized evaluation is eager over the whole batch, so
// it can raise type errors on rows the interpreters' short-circuiting (or
// the interpreters' later filter placement) never reaches; deferring those
// statements to the interpreter keeps the engines' observable behaviour
// identical — the interpreter decides whether the query errors.
func deferToFallback(err error) error {
	if err == nil || errors.Is(err, ErrUnsupported) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrUnsupported, err)
}

// eval evaluates an expression into a dense vector over the batch's live
// rows.
func (ctx *evalCtx) eval(e sqlparser.Expr) (*Vector, error) {
	n := ctx.batch.Len()
	switch v := e.(type) {
	case *sqlparser.NumberLit:
		s, err := parseNumberScalar(v.Value)
		if err != nil {
			return nil, err
		}
		return constVec(s, n), nil
	case *sqlparser.StringLit:
		return constVec(scalar{kind: KindString, s: v.Value}, n), nil
	case *sqlparser.BoolLit:
		b := int64(0)
		if v.Value {
			b = 1
		}
		return constVec(scalar{kind: KindBool, i: b}, n), nil
	case *sqlparser.NullLit:
		return NewNullVector(n), nil
	case *sqlparser.DateLit:
		d, err := parseDate(v.Value)
		if err != nil {
			return nil, errEval(e, fmt.Errorf("invalid date %q: %w", v.Value, err))
		}
		return constVec(scalar{kind: KindDate, i: d}, n), nil
	case *sqlparser.IntervalLit:
		// Bare intervals evaluate to their numeric count; date arithmetic
		// with a unit is handled in the BinaryExpr case.
		s, err := parseNumberScalar(v.Value)
		if err != nil {
			return nil, err
		}
		return constVec(s, n), nil
	case *sqlparser.ColumnRef:
		return ctx.resolveColumn(v)
	case *sqlparser.ParenExpr:
		return ctx.eval(v.Expr)
	case *sqlparser.UnaryExpr:
		return ctx.evalUnary(v)
	case *sqlparser.BinaryExpr:
		return ctx.evalBinary(v)
	case *sqlparser.FuncCall:
		return ctx.evalFunc(v)
	case *sqlparser.CaseExpr:
		return ctx.evalCase(v)
	case *sqlparser.BetweenExpr:
		return ctx.evalBetween(v)
	case *sqlparser.InExpr:
		return ctx.evalIn(v)
	case *sqlparser.IsNullExpr:
		val, err := ctx.eval(v.Expr)
		if err != nil {
			return nil, err
		}
		out := NewVector(KindBool, n)
		for i := 0; i < n; i++ {
			if val.IsNull(i) != v.Not {
				out.Ints[i] = 1
			}
		}
		return out, nil
	case *sqlparser.ExistsExpr:
		return ctx.evalExists(v)
	case *sqlparser.SubqueryExpr:
		return ctx.evalScalarSub(v)
	case *sqlparser.ExtractExpr:
		return ctx.evalExtract(v)
	case *sqlparser.SubstringExpr:
		return ctx.evalSubstring(v)
	case *sqlparser.CastExpr:
		return ctx.evalCast(v)
	case *sqlparser.ParamRef:
		return nil, fmt.Errorf("unresolved template parameter ${%s}", v.Name)
	default:
		return nil, fmt.Errorf("%w: expression %T", ErrUnsupported, e)
	}
}

func (ctx *evalCtx) resolveColumn(v *sqlparser.ColumnRef) (*Vector, error) {
	if ctx.refs != nil {
		if vec, ok := ctx.refs[refKey(v.Table, v.Column)]; ok {
			return vec, nil
		}
	}
	idx, err := ctx.batch.findColumn(v.Table, v.Column)
	if err == errColumnNotFound {
		if v.Table != "" {
			return nil, fmt.Errorf("unknown column %s.%s", v.Table, v.Column)
		}
		return nil, fmt.Errorf("unknown column %s", v.Column)
	}
	if err != nil {
		return nil, err
	}
	return ctx.batch.dense(idx), nil
}

// constVec fills a vector with one scalar and marks it as a broadcast
// constant, which is what arms the dictionary fast paths downstream.
func constVec(s scalar, n int) *Vector {
	if s.kind == KindNull {
		return NewNullVector(n)
	}
	out := NewVector(s.kind, n)
	out.constVal = true
	switch s.kind {
	case KindInt, KindDate, KindBool:
		for i := range out.Ints {
			out.Ints[i] = s.i
		}
	case KindFloat:
		for i := range out.Floats {
			out.Floats[i] = s.f
		}
	case KindString:
		for i := range out.Strs {
			out.Strs[i] = s.s
		}
	}
	return out
}

// parseNumberScalar mirrors the interpreter's numeric literal parsing:
// integers stay exact, everything else becomes a float. Literals vexec
// cannot parse cleanly are NOT silently coerced (the interpreter's atof
// collapses garbage to 0); they defer the statement to the interpreter via
// ErrUnsupported so the engines cannot disagree on such input.
func parseNumberScalar(s string) (scalar, error) {
	if !strings.ContainsAny(s, ".eE") {
		var n int64
		neg := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if i == 0 && (c == '-' || c == '+') {
				neg = c == '-'
				continue
			}
			if c < '0' || c > '9' {
				f, err := atof(s)
				return scalar{kind: KindFloat, f: f}, err
			}
			n = n*10 + int64(c-'0')
		}
		if neg {
			n = -n
		}
		return scalar{kind: KindInt, i: n}, nil
	}
	f, err := atof(s)
	return scalar{kind: KindFloat, f: f}, err
}

// atof parses a float literal strictly (the whole string must parse, no
// trailing garbage). Unlike the interpreter's variant it reports failure
// instead of silently coercing: the caller defers the statement back to
// the interpreter, which owns the semantics of malformed numerics.
func atof(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: unparsable numeric literal %q", ErrUnsupported, s)
	}
	return f, nil
}

// truthy is the two-valued truth of row i: NULL is false. It implements
// the predicate-consumer collapse (sqlsem.Tri.Accept) for filters, HAVING
// and CASE WHEN arms; expression-internal logic must use triAt instead so
// UNKNOWN propagates.
func truthy(v *Vector, i int) bool {
	if v.IsNull(i) {
		return false
	}
	switch v.Kind {
	case KindBool, KindInt, KindDate:
		return v.Ints[i] != 0
	case KindFloat:
		return v.Floats[i] != 0
	default:
		return false
	}
}

// triAt lifts row i into the shared ternary-logic domain: NULL is UNKNOWN.
func triAt(v *Vector, i int) sqlsem.Tri {
	if v.IsNull(i) {
		return sqlsem.Unknown
	}
	return sqlsem.Of(truthy(v, i))
}

// setTri lowers a ternary truth value into row i of a boolean vector:
// UNKNOWN becomes NULL, so null bitmaps flow through boolean vectors
// exactly like the interpreters' NULL values flow through predicates.
func setTri(out *Vector, i int, t sqlsem.Tri) {
	switch t {
	case sqlsem.True:
		out.Ints[i] = 1
	case sqlsem.Unknown:
		out.SetNull(i)
	}
}

func (ctx *evalCtx) evalUnary(v *sqlparser.UnaryExpr) (*Vector, error) {
	val, err := ctx.eval(v.Expr)
	if err != nil {
		return nil, err
	}
	n := val.Len()
	switch v.Op {
	case "NOT":
		out := NewVector(KindBool, n)
		for i := 0; i < n; i++ {
			setTri(out, i, sqlsem.Not(triAt(val, i)))
		}
		return out, nil
	case "-":
		// Fast paths for homogeneous numeric vectors.
		if val.Kind == KindInt {
			out := NewVector(KindInt, n)
			for i := 0; i < n; i++ {
				out.Ints[i] = -val.Ints[i]
			}
			out.Nulls = copyNulls(val.Nulls)
			return out, nil
		}
		if val.Kind == KindFloat && val.IsInt == nil {
			out := NewVector(KindFloat, n)
			for i := 0; i < n; i++ {
				out.Floats[i] = -val.Floats[i]
			}
			out.Nulls = copyNulls(val.Nulls)
			return out, nil
		}
		bld := newBuilder(n)
		for i := 0; i < n; i++ {
			s := val.At(i)
			switch s.kind {
			case KindNull:
				bld.append(nullScalar)
			case KindInt:
				bld.append(scalar{kind: KindInt, i: -s.i})
			default:
				bld.append(scalar{kind: KindFloat, f: -s.floatVal()})
			}
		}
		return bld.finalize()
	case "+":
		return val, nil
	default:
		return nil, fmt.Errorf("unknown unary operator %q", v.Op)
	}
}

func copyNulls(nulls []bool) []bool {
	if nulls == nil {
		return nil
	}
	out := make([]bool, len(nulls))
	copy(out, nulls)
	return out
}

func (ctx *evalCtx) evalBinary(v *sqlparser.BinaryExpr) (*Vector, error) {
	switch v.Op {
	case "AND", "OR":
		l, err := ctx.eval(v.Left)
		if err != nil {
			return nil, deferToFallback(err)
		}
		r, err := ctx.eval(v.Right)
		if err != nil {
			return nil, deferToFallback(err)
		}
		n := l.Len()
		out := NewVector(KindBool, n)
		if v.Op == "AND" {
			for i := 0; i < n; i++ {
				setTri(out, i, sqlsem.And(triAt(l, i), triAt(r, i)))
			}
		} else {
			for i := 0; i < n; i++ {
				setTri(out, i, sqlsem.Or(triAt(l, i), triAt(r, i)))
			}
		}
		return out, nil
	}

	// Date +/- INTERVAL with a calendar unit.
	if iv, ok := v.Right.(*sqlparser.IntervalLit); ok && (v.Op == "+" || v.Op == "-") {
		l, err := ctx.eval(v.Left)
		if err != nil {
			return nil, err
		}
		ns, err := parseNumberScalar(iv.Value)
		if err != nil {
			return nil, err
		}
		nv := ns.intVal()
		if v.Op == "-" {
			nv = -nv
		}
		n := l.Len()
		out := NewVector(KindDate, n)
		for i := 0; i < n; i++ {
			s := l.At(i)
			if s.isNull() {
				out.SetNull(i)
				continue
			}
			if s.kind != KindDate {
				return nil, fmt.Errorf("interval arithmetic requires a date, got %s", s.kind)
			}
			d, ok := addInterval(s.i, nv, iv.Unit)
			if !ok {
				return nil, fmt.Errorf("unknown interval unit %q", iv.Unit)
			}
			out.Ints[i] = d
		}
		return out, nil
	}

	l, err := ctx.eval(v.Left)
	if err != nil {
		return nil, err
	}
	r, err := ctx.eval(v.Right)
	if err != nil {
		return nil, err
	}
	switch v.Op {
	case "+", "-", "*", "/", "%", "||":
		out, err := arithVec(v.Op, l, r)
		if err != nil {
			return nil, errEval(v, err)
		}
		return out, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return cmpVec(v.Op, l, r), nil
	case "LIKE", "NOT LIKE":
		return likeVec(l, r, v.Op == "NOT LIKE"), nil
	default:
		return nil, fmt.Errorf("unknown binary operator %q", v.Op)
	}
}

// arithScalar mirrors engine.Arithmetic exactly: numeric promotion, date
// day-count arithmetic, integer-preserving division, NULL on division by
// zero.
func arithScalar(op string, a, b scalar) (scalar, error) {
	if a.isNull() || b.isNull() {
		return nullScalar, nil
	}
	if a.kind == KindDate && b.isNumeric() {
		switch op {
		case "+":
			return scalar{kind: KindDate, i: a.i + b.intVal()}, nil
		case "-":
			return scalar{kind: KindDate, i: a.i - b.intVal()}, nil
		}
	}
	if a.kind == KindDate && b.kind == KindDate && op == "-" {
		return scalar{kind: KindInt, i: a.i - b.i}, nil
	}
	if a.kind == KindString || b.kind == KindString {
		if op == "||" {
			return scalar{kind: KindString, s: a.render() + b.render()}, nil
		}
		return scalar{}, fmt.Errorf("cannot apply %q to %s and %s", op, a.kind, b.kind)
	}
	if op == "||" {
		return scalar{kind: KindString, s: a.render() + b.render()}, nil
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case "+":
			return scalar{kind: KindInt, i: a.i + b.i}, nil
		case "-":
			return scalar{kind: KindInt, i: a.i - b.i}, nil
		case "*":
			return scalar{kind: KindInt, i: a.i * b.i}, nil
		case "%":
			if b.i == 0 {
				return nullScalar, nil
			}
			return scalar{kind: KindInt, i: a.i % b.i}, nil
		case "/":
			if b.i == 0 {
				return nullScalar, nil
			}
			if a.i%b.i == 0 {
				return scalar{kind: KindInt, i: a.i / b.i}, nil
			}
			return scalar{kind: KindFloat, f: float64(a.i) / float64(b.i)}, nil
		}
	}
	af, bf := a.floatVal(), b.floatVal()
	switch op {
	case "+":
		return scalar{kind: KindFloat, f: af + bf}, nil
	case "-":
		return scalar{kind: KindFloat, f: af - bf}, nil
	case "*":
		return scalar{kind: KindFloat, f: af * bf}, nil
	case "/":
		if bf == 0 {
			return nullScalar, nil
		}
		return scalar{kind: KindFloat, f: af / bf}, nil
	case "%":
		if bf == 0 {
			return nullScalar, nil
		}
		return scalar{kind: KindFloat, f: float64(int64(af) % int64(bf))}, nil
	default:
		return scalar{}, fmt.Errorf("unknown arithmetic operator %q", op)
	}
}

// arithVec applies an arithmetic operator element-wise with typed fast
// paths for the hot shapes (pure int and pure float vectors) and a generic
// scalar loop for everything else.
func arithVec(op string, l, r *Vector) (*Vector, error) {
	n := l.Len()
	pureFloat := func(v *Vector) bool { return v.Kind == KindFloat && v.IsInt == nil }

	// int op int for the exact operators.
	if l.Kind == KindInt && r.Kind == KindInt && (op == "+" || op == "-" || op == "*") {
		out := NewVector(KindInt, n)
		for i := 0; i < n; i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.SetNull(i)
				continue
			}
			switch op {
			case "+":
				out.Ints[i] = l.Ints[i] + r.Ints[i]
			case "-":
				out.Ints[i] = l.Ints[i] - r.Ints[i]
			case "*":
				out.Ints[i] = l.Ints[i] * r.Ints[i]
			}
		}
		return out, nil
	}

	// Mixes of pure int and pure float vectors for + - *.
	numericPure := func(v *Vector) bool { return v.Kind == KindInt || pureFloat(v) }
	if numericPure(l) && numericPure(r) && (pureFloat(l) || pureFloat(r)) && (op == "+" || op == "-" || op == "*") {
		out := NewVector(KindFloat, n)
		lf := func(i int) float64 {
			if l.Kind == KindInt {
				return float64(l.Ints[i])
			}
			return l.Floats[i]
		}
		rf := func(i int) float64 {
			if r.Kind == KindInt {
				return float64(r.Ints[i])
			}
			return r.Floats[i]
		}
		for i := 0; i < n; i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.SetNull(i)
				continue
			}
			switch op {
			case "+":
				out.Floats[i] = lf(i) + rf(i)
			case "-":
				out.Floats[i] = lf(i) - rf(i)
			case "*":
				out.Floats[i] = lf(i) * rf(i)
			}
		}
		return out, nil
	}

	// Generic scalar path covering division, modulo, concatenation, dates,
	// bools and the int/float duality masks.
	bld := newBuilder(n)
	for i := 0; i < n; i++ {
		s, err := arithScalar(op, l.At(i), r.At(i))
		if err != nil {
			return nil, err
		}
		bld.append(s)
	}
	return bld.finalize()
}

// cmpVec applies a comparison operator with ternary NULL semantics: any
// NULL operand marks the output row NULL (UNKNOWN), matching the
// interpreters and sqlsem.CompareNullable. The typed fast paths only skip
// the boxing, never the null bitmap.
func cmpVec(op string, l, r *Vector) *Vector {
	n := l.Len()
	out := NewVector(KindBool, n)
	set := func(i, c int) {
		if sqlsem.Compare(op, c) == sqlsem.True {
			out.Ints[i] = 1
		}
	}
	intKinds := func(v *Vector) bool {
		return v.Kind == KindInt || v.Kind == KindDate || v.Kind == KindBool
	}
	switch {
	case intKinds(l) && intKinds(r):
		for i := 0; i < n; i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.SetNull(i)
				continue
			}
			a, b := l.Ints[i], r.Ints[i]
			c := 0
			if a < b {
				c = -1
			} else if a > b {
				c = 1
			}
			set(i, c)
		}
	case l.Kind == KindFloat && l.IsInt == nil && r.Kind == KindFloat && r.IsInt == nil:
		for i := 0; i < n; i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.SetNull(i)
				continue
			}
			a, b := l.Floats[i], r.Floats[i]
			c := 0
			if a < b {
				c = -1
			} else if a > b {
				c = 1
			}
			set(i, c)
		}
	case l.Kind == KindString && r.Kind == KindString && l.Dict != nil && l.Dict == r.Dict:
		// Shared dictionary: code order is value order, so the comparison
		// never touches the strings.
		for i := 0; i < n; i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.SetNull(i)
				continue
			}
			a, b := l.Codes[i], r.Codes[i]
			c := 0
			if a < b {
				c = -1
			} else if a > b {
				c = 1
			}
			set(i, c)
		}
	case n > 0 && l.Dict != nil && r.constVal && r.Kind == KindString:
		// Column-vs-literal: one binary search resolves the literal to a
		// code (or its insertion point), then every row compares codes.
		code, exact := l.Dict.Code(r.Strs[0])
		for i := 0; i < n; i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.SetNull(i)
				continue
			}
			set(i, dictCmp(l.Codes[i], code, exact))
		}
	case n > 0 && r.Dict != nil && l.constVal && l.Kind == KindString:
		code, exact := r.Dict.Code(l.Strs[0])
		for i := 0; i < n; i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.SetNull(i)
				continue
			}
			set(i, -dictCmp(r.Codes[i], code, exact))
		}
	case l.Kind == KindString && r.Kind == KindString:
		for i := 0; i < n; i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.SetNull(i)
				continue
			}
			set(i, strings.Compare(l.StrAt(i), r.StrAt(i)))
		}
	default:
		for i := 0; i < n; i++ {
			a, b := l.At(i), r.At(i)
			if a.isNull() || b.isNull() {
				out.SetNull(i)
				continue
			}
			set(i, compareScalars(a, b))
		}
	}
	return out
}

// dictCmp is the sign of strings.Compare(dict.Vals[c], q) given q's binary
// search result: when q is present, code comparison; when absent, every
// code below the insertion point sorts before q and every code at or above
// it sorts after.
func dictCmp(c, code uint32, exact bool) int {
	if exact {
		if c < code {
			return -1
		} else if c > code {
			return 1
		}
		return 0
	}
	if c < code {
		return -1
	}
	return 1
}

// likeVec applies LIKE / NOT LIKE with ternary NULL semantics: a NULL
// string or pattern yields NULL, negation included (NOT UNKNOWN stays
// UNKNOWN).
func likeVec(l, r *Vector, negate bool) *Vector {
	n := l.Len()
	out := NewVector(KindBool, n)
	if n > 0 && l.Dict != nil && r.constVal && r.Kind == KindString && len(l.Dict.Vals) <= 4*n {
		// Low-cardinality dictionary against a constant pattern: match each
		// distinct value once, then the scan loop is a table lookup.
		table := make([]bool, len(l.Dict.Vals))
		for c, s := range l.Dict.Vals {
			table[c] = likeMatch(s, r.Strs[0])
		}
		for i := 0; i < n; i++ {
			if l.IsNull(i) {
				setTri(out, i, sqlsem.Like(true, false, negate))
				continue
			}
			setTri(out, i, sqlsem.Like(false, table[l.Codes[i]], negate))
		}
		return out
	}
	for i := 0; i < n; i++ {
		a, b := l.At(i), r.At(i)
		eitherNull := a.isNull() || b.isNull()
		matched := false
		if !eitherNull {
			matched = likeMatch(a.render(), b.render())
		}
		setTri(out, i, sqlsem.Like(eitherNull, matched, negate))
	}
	return out
}

func (ctx *evalCtx) evalCase(v *sqlparser.CaseExpr) (*Vector, error) {
	n := ctx.batch.Len()
	var operand *Vector
	var err error
	if v.Operand != nil {
		operand, err = ctx.eval(v.Operand)
		if err != nil {
			return nil, err
		}
	}
	conds := make([]*Vector, len(v.Whens))
	thens := make([]*Vector, len(v.Whens))
	for wi, w := range v.Whens {
		if conds[wi], err = ctx.eval(w.When); err != nil {
			return nil, deferToFallback(err)
		}
		if thens[wi], err = ctx.eval(w.Then); err != nil {
			return nil, deferToFallback(err)
		}
	}
	var elseVec *Vector
	if v.Else != nil {
		if elseVec, err = ctx.eval(v.Else); err != nil {
			return nil, deferToFallback(err)
		}
	}
	bld := newBuilder(n)
	for i := 0; i < n; i++ {
		matched := false
		for wi := range v.Whens {
			var hit bool
			if operand != nil {
				hit = equalScalars(operand.At(i), conds[wi].At(i))
			} else {
				hit = truthy(conds[wi], i)
			}
			if hit {
				bld.append(thens[wi].At(i))
				matched = true
				break
			}
		}
		if !matched {
			if elseVec != nil {
				bld.append(elseVec.At(i))
			} else {
				bld.append(nullScalar)
			}
		}
	}
	return bld.finalize()
}

func (ctx *evalCtx) evalBetween(v *sqlparser.BetweenExpr) (*Vector, error) {
	val, err := ctx.eval(v.Expr)
	if err != nil {
		return nil, err
	}
	lo, err := ctx.eval(v.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := ctx.eval(v.Hi)
	if err != nil {
		return nil, err
	}
	n := val.Len()
	out := NewVector(KindBool, n)
	for i := 0; i < n; i++ {
		a, l, h := val.At(i), lo.At(i), hi.At(i)
		geLo := sqlsem.CompareNullable(">=", a.isNull() || l.isNull(), compareScalarsNonNull(a, l))
		leHi := sqlsem.CompareNullable("<=", a.isNull() || h.isNull(), compareScalarsNonNull(a, h))
		setTri(out, i, sqlsem.Between(geLo, leHi, v.Not))
	}
	return out, nil
}

// compareScalarsNonNull compares two scalars when neither is NULL; with a
// NULL operand the result is unused (CompareNullable short-circuits to
// UNKNOWN) and zero is returned.
func compareScalarsNonNull(a, b scalar) int {
	if a.isNull() || b.isNull() {
		return 0
	}
	return compareScalars(a, b)
}

func (ctx *evalCtx) evalIn(v *sqlparser.InExpr) (*Vector, error) {
	if v.Subquery != nil {
		return ctx.evalInSub(v)
	}
	val, err := ctx.eval(v.Expr)
	if err != nil {
		return nil, err
	}
	items := make([]*Vector, len(v.List))
	for ii, item := range v.List {
		if items[ii], err = ctx.eval(item); err != nil {
			return nil, deferToFallback(err)
		}
	}
	n := val.Len()
	out := NewVector(KindBool, n)
	if codes, listHasNull, ok := dictInCodes(val, items); ok {
		// Dictionary-coded value against an all-literal string list: the
		// list resolves to a code set once, and each row is code lookups.
		for i := 0; i < n; i++ {
			if val.IsNull(i) {
				setTri(out, i, inTri(true, false, listHasNull, v.Not))
				continue
			}
			c := val.Codes[i]
			found := false
			for _, want := range codes {
				if c == want {
					found = true
					break
				}
			}
			setTri(out, i, inTri(false, found, listHasNull, v.Not))
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		a := val.At(i)
		var found, listHasNull bool
		for _, item := range items {
			s := item.At(i)
			if equalScalars(a, s) {
				found = true
				break
			}
			if s.isNull() {
				listHasNull = true
			}
		}
		t := sqlsem.In(a.isNull(), found, listHasNull, false)
		if v.Not {
			t = sqlsem.Not(t)
		}
		setTri(out, i, t)
	}
	return out, nil
}

// inTri folds the IN truth table plus optional negation.
func inTri(valNull, found, listHasNull, not bool) sqlsem.Tri {
	t := sqlsem.In(valNull, found, listHasNull, false)
	if not {
		t = sqlsem.Not(t)
	}
	return t
}

// dictInCodes resolves an IN list against a dictionary-coded value vector:
// ok only when every list item is a broadcast string constant (or a NULL
// literal), in which case the present items' codes are returned. Items
// absent from the dictionary simply contribute no code — they can never
// match any row.
func dictInCodes(val *Vector, items []*Vector) (codes []uint32, listHasNull, ok bool) {
	if val.Dict == nil || val.Len() == 0 {
		return nil, false, false
	}
	for _, item := range items {
		switch {
		case item.Kind == KindNull:
			listHasNull = true
		case item.constVal && item.Kind == KindString:
			if c, exact := val.Dict.Code(item.Strs[0]); exact {
				codes = append(codes, c)
			}
		default:
			return nil, false, false
		}
	}
	return codes, listHasNull, true
}

// subFor looks up the prepared state of a sub-query use site.
func (ctx *evalCtx) subFor(s *sqlparser.SelectStatement) (*subState, error) {
	if st, ok := ctx.ex.subs[s]; ok {
		return st, nil
	}
	return nil, fmt.Errorf("%w: sub-query was not prepared", ErrUnsupported)
}

// applyCandidates probes a decorrelated hash build with the batch's outer
// correlation keys: cand lists the matching inner rows of every live batch
// row, off[i]..off[i+1] delimiting row i's range in inner-row order. Pair
// conjuncts (the non-equi correlation predicates) filter the candidates with
// two-valued truth — the same collapse the interpreter's sub-query WHERE
// filter applies. Probing mutates nothing, so filters holding probes run
// safely from morsel workers.
func (ctx *evalCtx) applyCandidates(as *applyState) (cand []int32, off []int32, err error) {
	b := ctx.batch
	n := b.Len()
	keyVecs := make([]*Vector, len(as.outerKeys))
	for i, k := range as.outerKeys {
		if keyVecs[i], err = ctx.eval(k); err != nil {
			return nil, nil, deferToFallback(err)
		}
	}
	off = make([]int32, n+1)
	var buf []byte
	for i := 0; i < n; i++ {
		// A NULL outer key matches nothing: equality with NULL is UNKNOWN.
		if !nullKeyRow(keyVecs, i) {
			buf = encodeRowKey(buf[:0], keyVecs, i)
			if g, ok := as.groups[string(buf)]; ok {
				for r := as.lists.head[g]; r >= 0; r = as.lists.next[r] {
					cand = append(cand, r)
				}
			}
		}
		off[i+1] = int32(len(cand))
	}
	if len(as.pairConjuncts) == 0 || len(cand) == 0 {
		return cand, off, nil
	}

	outerIdx := make([]int, len(cand))
	innerIdx := make([]int, len(cand))
	for i := 0; i < n; i++ {
		for k := off[i]; k < off[i+1]; k++ {
			outerIdx[k] = b.physRow(i)
			innerIdx[k] = int(cand[k])
		}
	}
	pctx := &evalCtx{ex: ctx.ex, batch: pairBatch(b, outerIdx, as.inner, innerIdx)}
	pass := make([]bool, len(cand))
	for i := range pass {
		pass[i] = true
	}
	for _, c := range as.pairConjuncts {
		v, err := pctx.eval(c)
		if err != nil {
			return nil, nil, deferToFallback(err)
		}
		for k := range pass {
			if pass[k] && (v.IsNull(k) || !truthy(v, k)) {
				pass[k] = false
			}
		}
	}
	// Compact the survivors in place; the write index never overtakes the
	// read index.
	out := cand[:0]
	newOff := make([]int32, n+1)
	for i := 0; i < n; i++ {
		for k := off[i]; k < off[i+1]; k++ {
			if pass[k] {
				out = append(out, cand[k])
			}
		}
		newOff[i+1] = int32(len(out))
	}
	return out, newOff, nil
}

// evalExists answers EXISTS/NOT EXISTS. Uncorrelated sites are a constant;
// correlated sites ask whether any candidate survives the key probe and the
// pair conjuncts. The result is always two-valued, like the interpreters'.
func (ctx *evalCtx) evalExists(v *sqlparser.ExistsExpr) (*Vector, error) {
	st, err := ctx.subFor(v.Subquery)
	if err != nil {
		return nil, err
	}
	n := ctx.batch.Len()
	out := NewVector(KindBool, n)
	if !st.correlated {
		if st.exists != v.Not {
			for i := range out.Ints {
				out.Ints[i] = 1
			}
		}
		return out, nil
	}
	_, off, err := ctx.applyCandidates(st.apply)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if (off[i+1] > off[i]) != v.Not {
			out.Ints[i] = 1
		}
	}
	return out, nil
}

// evalScalarSub answers a scalar sub-query site. Uncorrelated sites broadcast
// the materialized first-row value; ApplyAgg sites look their aggregate group
// up directly by outer key (falling back to the empty-group value); ApplyFirst
// sites take the first surviving candidate's projected value, NULL when none.
func (ctx *evalCtx) evalScalarSub(v *sqlparser.SubqueryExpr) (*Vector, error) {
	st, err := ctx.subFor(v.Select)
	if err != nil {
		return nil, err
	}
	n := ctx.batch.Len()
	if !st.correlated {
		return constVec(st.scalarVal, n), nil
	}
	as := st.apply
	if as.shape == plan.ApplyAgg {
		keyVecs := make([]*Vector, len(as.outerKeys))
		for i, k := range as.outerKeys {
			if keyVecs[i], err = ctx.eval(k); err != nil {
				return nil, deferToFallback(err)
			}
		}
		bld := newBuilder(n)
		var buf []byte
		for i := 0; i < n; i++ {
			if nullKeyRow(keyVecs, i) {
				bld.append(as.emptyVal)
				continue
			}
			buf = encodeRowKey(buf[:0], keyVecs, i)
			if g, ok := as.groups[string(buf)]; ok {
				bld.append(as.groupVals.At(int(g)))
			} else {
				bld.append(as.emptyVal)
			}
		}
		return bld.finalize()
	}
	cand, off, err := ctx.applyCandidates(as)
	if err != nil {
		return nil, err
	}
	bld := newBuilder(n)
	for i := 0; i < n; i++ {
		if off[i+1] > off[i] {
			bld.append(as.projVals.At(int(cand[off[i]])))
		} else {
			bld.append(nullScalar)
		}
	}
	return bld.finalize()
}

// evalInSub answers IN/NOT IN against a sub-query with the shared ternary
// membership semantics (sqlsem.In): an uncorrelated site probes the
// materialized set, a correlated site scans its candidate rows' projected
// values — the per-row image of the interpreter's membership set.
func (ctx *evalCtx) evalInSub(v *sqlparser.InExpr) (*Vector, error) {
	st, err := ctx.subFor(v.Subquery)
	if err != nil {
		return nil, err
	}
	val, err := ctx.eval(v.Expr)
	if err != nil {
		return nil, err
	}
	n := val.Len()
	out := NewVector(KindBool, n)
	if !st.correlated {
		var buf []byte
		for i := 0; i < n; i++ {
			a := val.At(i)
			found := false
			if !a.isNull() && len(st.set) > 0 {
				buf = appendScalarKey(buf[:0], a)
				found = st.set[string(buf)]
			}
			t := sqlsem.In(a.isNull(), found, st.setHasNull, st.setEmpty)
			if v.Not {
				t = sqlsem.Not(t)
			}
			setTri(out, i, t)
		}
		return out, nil
	}
	as := st.apply
	cand, off, err := ctx.applyCandidates(as)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		a := val.At(i)
		var found, hasNull bool
		for k := off[i]; k < off[i+1]; k++ {
			s := as.projVals.At(int(cand[k]))
			if s.isNull() {
				hasNull = true
				continue
			}
			if equalScalars(a, s) {
				found = true
				break
			}
		}
		t := sqlsem.In(a.isNull(), found, hasNull, off[i+1] == off[i])
		if v.Not {
			t = sqlsem.Not(t)
		}
		setTri(out, i, t)
	}
	return out, nil
}

func (ctx *evalCtx) evalExtract(v *sqlparser.ExtractExpr) (*Vector, error) {
	val, err := ctx.eval(v.From)
	if err != nil {
		return nil, err
	}
	n := val.Len()
	out := NewVector(KindInt, n)
	for i := 0; i < n; i++ {
		s := val.At(i)
		if s.isNull() {
			out.SetNull(i)
			continue
		}
		if s.kind != KindDate {
			return nil, errEval(v, fmt.Errorf("EXTRACT requires a date, got %s", s.kind))
		}
		y, m, d := dateParts(s.i)
		switch v.Unit {
		case "YEAR":
			out.Ints[i] = int64(y)
		case "MONTH":
			out.Ints[i] = int64(m)
		default:
			out.Ints[i] = int64(d)
		}
	}
	return out, nil
}

func (ctx *evalCtx) evalSubstring(v *sqlparser.SubstringExpr) (*Vector, error) {
	val, err := ctx.eval(v.Expr)
	if err != nil {
		return nil, err
	}
	start, err := ctx.eval(v.Start)
	if err != nil {
		return nil, err
	}
	var length *Vector
	if v.Length != nil {
		if length, err = ctx.eval(v.Length); err != nil {
			return nil, err
		}
	}
	n := val.Len()
	out := NewVector(KindString, n)
	for i := 0; i < n; i++ {
		s := val.At(i)
		if s.isNull() {
			out.SetNull(i)
			continue
		}
		str := s.render()
		from := int(start.At(i).intVal()) - 1
		if from < 0 {
			from = 0
		}
		if from > len(str) {
			from = len(str)
		}
		to := len(str)
		if length != nil {
			to = from + int(length.At(i).intVal())
			if to > len(str) {
				to = len(str)
			}
			if to < from {
				to = from
			}
		}
		out.Strs[i] = str[from:to]
	}
	return out, nil
}

func (ctx *evalCtx) evalCast(v *sqlparser.CastExpr) (*Vector, error) {
	val, err := ctx.eval(v.Expr)
	if err != nil {
		return nil, err
	}
	n := val.Len()
	bld := newBuilder(n)
	for i := 0; i < n; i++ {
		s := val.At(i)
		if s.isNull() {
			bld.append(nullScalar)
			continue
		}
		switch strings.ToLower(v.Type) {
		case "integer", "int", "bigint", "smallint":
			bld.append(scalar{kind: KindInt, i: s.intVal()})
		case "double", "float", "real", "decimal", "numeric":
			bld.append(scalar{kind: KindFloat, f: s.floatVal()})
		case "varchar", "char", "text", "string":
			bld.append(scalar{kind: KindString, s: s.render()})
		case "date":
			if s.kind == KindDate {
				bld.append(s)
				continue
			}
			d, err := parseDate(s.render())
			if err != nil {
				return nil, fmt.Errorf("invalid date %q: %w", s.render(), err)
			}
			bld.append(scalar{kind: KindDate, i: d})
		default:
			return nil, fmt.Errorf("unsupported cast target %q", v.Type)
		}
	}
	return bld.finalize()
}

func (ctx *evalCtx) evalFunc(v *sqlparser.FuncCall) (*Vector, error) {
	if v.IsAggregate() {
		if ctx.aggs == nil {
			return nil, fmt.Errorf("aggregate %s used outside GROUP BY context", v.Name)
		}
		vec, ok := ctx.aggs[v.SQL()]
		if !ok {
			return nil, fmt.Errorf("internal: aggregate %s was not precomputed", v.SQL())
		}
		return vec, nil
	}
	n := ctx.batch.Len()
	args := make([]*Vector, len(v.Args))
	for ai, a := range v.Args {
		var err error
		if args[ai], err = ctx.eval(a); err != nil {
			return nil, err
		}
	}
	switch v.Name {
	case "abs":
		if len(args) != 1 {
			return nil, fmt.Errorf("abs expects 1 argument")
		}
		bld := newBuilder(n)
		for i := 0; i < n; i++ {
			s := args[0].At(i)
			if s.isNull() {
				bld.append(nullScalar)
				continue
			}
			f := s.floatVal()
			if f < 0 {
				f = -f
			}
			if s.kind == KindInt {
				bld.append(scalar{kind: KindInt, i: int64(f)})
			} else {
				bld.append(scalar{kind: KindFloat, f: f})
			}
		}
		return bld.finalize()
	case "length", "char_length":
		if len(args) != 1 {
			return nil, fmt.Errorf("%s expects 1 argument", v.Name)
		}
		out := NewVector(KindInt, n)
		for i := 0; i < n; i++ {
			out.Ints[i] = int64(len(args[0].At(i).render()))
		}
		return out, nil
	case "upper", "lower":
		out := NewVector(KindString, n)
		for i := 0; i < n; i++ {
			if v.Name == "upper" {
				out.Strs[i] = strings.ToUpper(args[0].At(i).render())
			} else {
				out.Strs[i] = strings.ToLower(args[0].At(i).render())
			}
		}
		return out, nil
	case "coalesce":
		bld := newBuilder(n)
		for i := 0; i < n; i++ {
			picked := nullScalar
			for _, a := range args {
				if s := a.At(i); !s.isNull() {
					picked = s
					break
				}
			}
			bld.append(picked)
		}
		return bld.finalize()
	case "round":
		if len(args) == 0 {
			return nil, fmt.Errorf("round expects at least 1 argument")
		}
		out := NewVector(KindFloat, n)
		for i := 0; i < n; i++ {
			f := args[0].At(i).floatVal()
			scale := 0
			if len(args) > 1 {
				scale = int(args[1].At(i).intVal())
			}
			mult := 1.0
			for j := 0; j < scale; j++ {
				mult *= 10
			}
			half := 0.5
			if f < 0 {
				half = -0.5
			}
			out.Floats[i] = float64(int64(f*mult+half)) / mult
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown function %q", v.Name)
	}
}
