package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sqalpel/internal/repository"
	"sqalpel/internal/workload"
)

// testClient wraps the httptest server with JSON helpers.
type testClient struct {
	t     *testing.T
	srv   *httptest.Server
	token string
}

func newTestClient(t *testing.T) (*testClient, *Server) {
	t.Helper()
	s := New(Options{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return &testClient{t: t, srv: ts}, s
}

func (c *testClient) do(method, path string, body any) (int, map[string]any) {
	c.t.Helper()
	var rdr io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rdr = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rdr)
	if err != nil {
		c.t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("X-Sqalpel-Token", c.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	if len(data) > 0 && strings.Contains(resp.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(data, &out); err != nil {
			// Arrays decode into the "_list" key for convenience.
			var list []any
			if err2 := json.Unmarshal(data, &list); err2 == nil {
				out["_list"] = list
			}
		}
	}
	out["_raw"] = string(data)
	return resp.StatusCode, out
}

func (c *testClient) register(nickname, email string) string {
	c.t.Helper()
	status, resp := c.do("POST", "/api/register", map[string]string{"nickname": nickname, "email": email})
	if status != http.StatusCreated {
		c.t.Fatalf("register failed: %d %v", status, resp)
	}
	return resp["token"].(string)
}

func TestHealthAndCatalogs(t *testing.T) {
	c, _ := newTestClient(t)
	status, _ := c.do("GET", "/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz = %d", status)
	}
	status, resp := c.do("GET", "/api/catalog/dbms", nil)
	if status != http.StatusOK || len(resp["_list"].([]any)) < 3 {
		t.Fatalf("dbms catalog = %d %v", status, resp)
	}
	// Adding requires authentication.
	status, _ = c.do("POST", "/api/catalog/dbms", map[string]any{"name": "monetdb", "version": "11.39"})
	if status != http.StatusUnauthorized {
		t.Fatalf("unauthenticated add = %d", status)
	}
	c.token = c.register("martin", "martin@example.org")
	status, _ = c.do("POST", "/api/catalog/platforms", map[string]any{"name": "pi-zero", "cpu": "arm", "cores": 1, "memory_gb": 1})
	if status != http.StatusCreated {
		t.Fatalf("add platform = %d", status)
	}
	status, resp = c.do("GET", "/api/catalog/platforms", nil)
	if status != http.StatusOK || !strings.Contains(resp["_raw"].(string), "pi-zero") {
		t.Fatalf("platform list missing new entry: %v", resp["_raw"])
	}
}

func TestRegisterLoginAndSessions(t *testing.T) {
	c, _ := newTestClient(t)
	c.register("ying", "ying@example.org")
	// Duplicate nickname rejected.
	status, _ := c.do("POST", "/api/register", map[string]string{"nickname": "ying", "email": "other@example.org"})
	if status != http.StatusBadRequest {
		t.Fatalf("duplicate register = %d", status)
	}
	// Login with the right and wrong email.
	status, resp := c.do("POST", "/api/login", map[string]string{"nickname": "ying", "email": "ying@example.org"})
	if status != http.StatusOK || resp["token"] == "" {
		t.Fatalf("login failed: %d %v", status, resp)
	}
	status, _ = c.do("POST", "/api/login", map[string]string{"nickname": "ying", "email": "wrong@example.org"})
	if status != http.StatusUnauthorized {
		t.Fatalf("wrong email login = %d", status)
	}
}

// createProjectWithExperiment walks through the owner workflow and returns
// the project id, experiment id and the owner's contributor key.
func createProjectWithExperiment(t *testing.T, c *testClient) (int, int, string) {
	t.Helper()
	status, resp := c.do("POST", "/api/projects", map[string]any{
		"name": "nation-space", "synopsis": "variants of the nation scan", "public": true,
		"attribution": "TPC-H dbgen inspired generator",
	})
	if status != http.StatusCreated {
		t.Fatalf("create project = %d %v", status, resp)
	}
	project := resp["project"].(map[string]any)
	pid := int(project["id"].(float64))
	key := resp["key"].(string)

	status, resp = c.do("POST", fmt.Sprintf("/api/projects/%d/experiments", pid), map[string]any{
		"title":        "nation baseline",
		"baseline_sql": workload.NationBaselineQuery,
		"seed_random":  5,
	})
	if status != http.StatusCreated {
		t.Fatalf("create experiment = %d %v", status, resp)
	}
	eid := int(resp["experiment_id"].(float64))
	if int(resp["query_count"].(float64)) < 2 {
		t.Fatalf("experiment pool too small: %v", resp)
	}
	if !strings.Contains(resp["grammar_text"].(string), "l_projection") {
		t.Fatalf("derived grammar missing: %v", resp["grammar_text"])
	}
	return pid, eid, key
}

func TestProjectLifecycleAndAccessControl(t *testing.T) {
	c, _ := newTestClient(t)
	c.token = c.register("martin", "martin@example.org")
	pid, eid, _ := createProjectWithExperiment(t, c)

	// The project is publicly listed without a token.
	anon := &testClient{t: t, srv: c.srv}
	status, resp := anon.do("GET", "/api/projects", nil)
	if status != http.StatusOK || !strings.Contains(resp["_raw"].(string), "nation-space") {
		t.Fatalf("anonymous listing = %d %v", status, resp["_raw"])
	}
	// Flip to private: anonymous users lose access.
	status, _ = c.do("POST", fmt.Sprintf("/api/projects/%d/visibility", pid), map[string]any{"public": false})
	if status != http.StatusOK {
		t.Fatalf("visibility = %d", status)
	}
	status, _ = anon.do("GET", fmt.Sprintf("/api/projects/%d", pid), nil)
	if status != http.StatusNotFound {
		t.Fatalf("private project visible to anonymous viewer: %d", status)
	}
	// Non-owner cannot grow the pool.
	other := &testClient{t: t, srv: c.srv}
	other.token = other.register("eve", "eve@example.org")
	status, _ = other.do("POST", fmt.Sprintf("/api/projects/%d/experiments/%d/grow", pid, eid), map[string]any{"count": 2})
	if status != http.StatusForbidden && status != http.StatusNotFound {
		t.Fatalf("non-owner grow = %d", status)
	}
	// Owner grows the pool with steering.
	status, resp = c.do("POST", fmt.Sprintf("/api/projects/%d/experiments/%d/grow", pid, eid), map[string]any{
		"count": 5, "exclude": []string{"n_comment"},
	})
	if status != http.StatusOK {
		t.Fatalf("grow = %d %v", status, resp)
	}
	status, resp = c.do("GET", fmt.Sprintf("/api/projects/%d/experiments/%d/queries", pid, eid), nil)
	if status != http.StatusOK {
		t.Fatalf("queries = %d", status)
	}
	if len(resp["_list"].([]any)) < 6 {
		t.Fatalf("pool did not grow: %d entries", len(resp["_list"].([]any)))
	}

	// Invite a contributor.
	status, resp = c.do("POST", fmt.Sprintf("/api/projects/%d/invite", pid), map[string]any{"nickname": "eve"})
	if status != http.StatusOK || resp["key"] == "" {
		t.Fatalf("invite = %d %v", status, resp)
	}
	// Now eve can view the private project.
	status, _ = other.do("GET", fmt.Sprintf("/api/projects/%d", pid), nil)
	if status != http.StatusOK {
		t.Fatalf("contributor view = %d", status)
	}

	// Comments.
	status, _ = other.do("POST", fmt.Sprintf("/api/projects/%d/comments", pid), map[string]any{"text": "please add index documentation"})
	if status != http.StatusCreated {
		t.Fatalf("comment = %d", status)
	}
	status, resp = other.do("GET", fmt.Sprintf("/api/projects/%d/comments", pid), nil)
	if status != http.StatusOK || len(resp["_list"].([]any)) != 1 {
		t.Fatalf("comments list = %d %v", status, resp)
	}
}

func TestDriverProtocolAndAnalytics(t *testing.T) {
	c, srv := newTestClient(t)
	c.token = c.register("martin", "martin@example.org")
	pid, eid, key := createProjectWithExperiment(t, c)

	// Work through the whole pool for one DBMS/platform combination.
	processed := 0
	for {
		status, resp := c.do("POST", "/api/task/request", map[string]any{
			"key": key, "experiment_id": eid, "dbms": "columba-1.0", "platform": "laptop",
		})
		if status == http.StatusNoContent {
			break
		}
		if status != http.StatusOK {
			t.Fatalf("task request = %d %v", status, resp)
		}
		taskID := int(resp["id"].(float64))
		sql := resp["sql"].(string)
		seconds := []float64{0.01 + float64(len(sql))/10000, 0.011, 0.012}
		errMsg := ""
		if strings.Contains(sql, "count(*)") {
			errMsg = "simulated failure on count(*)"
			seconds = nil
		}
		status, resp = c.do("POST", "/api/task/complete", map[string]any{
			"key": key, "task_id": taskID, "seconds": seconds, "error": errMsg,
			"extra": map[string]string{"load_avg_1": "0.2"},
		})
		if status != http.StatusCreated {
			t.Fatalf("task complete = %d %v", status, resp)
		}
		processed++
	}
	if processed < 2 {
		t.Fatalf("processed only %d tasks", processed)
	}
	// A second target so the speedup endpoint has a pair.
	for {
		status, resp := c.do("POST", "/api/task/request", map[string]any{
			"key": key, "experiment_id": eid, "dbms": "tuplestore-1.0", "platform": "laptop",
		})
		if status == http.StatusNoContent {
			break
		}
		taskID := int(resp["id"].(float64))
		c.do("POST", "/api/task/complete", map[string]any{
			"key": key, "task_id": taskID, "seconds": []float64{0.02, 0.021}, "error": "",
		})
	}

	// Results and CSV.
	status, resp := c.do("GET", fmt.Sprintf("/api/projects/%d/results", pid), nil)
	if status != http.StatusOK || len(resp["_list"].([]any)) < processed {
		t.Fatalf("results = %d %v", status, resp)
	}
	status, resp = c.do("GET", fmt.Sprintf("/api/projects/%d/results.csv", pid), nil)
	if status != http.StatusOK || !strings.Contains(resp["_raw"].(string), "query_id") {
		t.Fatalf("csv export = %d", status)
	}

	// Analytics endpoints.
	status, resp = c.do("GET", fmt.Sprintf("/api/projects/%d/analytics/history?target=columba-1.0@laptop", pid), nil)
	if status != http.StatusOK || len(resp["_list"].([]any)) == 0 {
		t.Fatalf("history = %d %v", status, resp)
	}
	status, resp = c.do("GET", fmt.Sprintf("/api/projects/%d/analytics/components?target=columba-1.0@laptop", pid), nil)
	if status != http.StatusOK {
		t.Fatalf("components = %d", status)
	}
	status, resp = c.do("GET", fmt.Sprintf("/api/projects/%d/analytics/speedup?base=columba-1.0@laptop&other=tuplestore-1.0@laptop", pid), nil)
	if status != http.StatusOK || resp["_raw"] == "" {
		t.Fatalf("speedup = %d", status)
	}
	status, _ = c.do("GET", fmt.Sprintf("/api/projects/%d/analytics/diff?a=1&b=2", pid), nil)
	if status != http.StatusOK {
		t.Fatalf("diff = %d", status)
	}
	status, _ = c.do("GET", fmt.Sprintf("/api/projects/%d/analytics/diff?a=1", pid), nil)
	if status != http.StatusBadRequest {
		t.Fatalf("diff without b = %d", status)
	}

	// Result moderation: hide the first result.
	results := resp // reuse variable to keep the linter quiet
	_ = results
	status, resp = c.do("GET", fmt.Sprintf("/api/projects/%d/results", pid), nil)
	first := resp["_list"].([]any)[0].(map[string]any)
	rid := int(first["id"].(float64))
	status, _ = c.do("POST", fmt.Sprintf("/api/results/%d/hide", rid), map[string]any{"hidden": true})
	if status != http.StatusOK {
		t.Fatalf("hide = %d", status)
	}
	// Anonymous readers no longer see it.
	anon := &testClient{t: t, srv: c.srv}
	status, resp = anon.do("GET", fmt.Sprintf("/api/projects/%d/results", pid), nil)
	if status != http.StatusOK {
		t.Fatalf("anon results = %d", status)
	}
	for _, item := range resp["_list"].([]any) {
		if int(item.(map[string]any)["id"].(float64)) == rid {
			t.Error("hidden result leaked to anonymous viewer")
		}
	}

	// Tasks listing reflects the processed queue.
	status, resp = c.do("GET", fmt.Sprintf("/api/projects/%d/tasks", pid), nil)
	if status != http.StatusOK || len(resp["_list"].([]any)) == 0 {
		t.Fatalf("tasks = %d", status)
	}

	// The store behind the server has everything for persistence.
	if len(srv.Store().Results("martin", pid)) < processed {
		t.Error("store missing results")
	}
}

func TestHTMLPages(t *testing.T) {
	c, _ := newTestClient(t)
	c.token = c.register("martin", "martin@example.org")
	pid, eid, key := createProjectWithExperiment(t, c)

	// Submit results for the first two queries so the history and the
	// differential pages have content.
	for i := 0; i < 2; i++ {
		status, resp := c.do("POST", "/api/task/request", map[string]any{
			"key": key, "experiment_id": eid, "dbms": "columba-1.0", "platform": "laptop",
		})
		if status != http.StatusOK {
			t.Fatalf("task request = %d", status)
		}
		taskID := int(resp["id"].(float64))
		c.do("POST", "/api/task/complete", map[string]any{
			"key": key, "task_id": taskID, "seconds": []float64{0.05}, "error": "",
		})
	}

	pages := []struct {
		path string
		want string
	}{
		{"/", "sqalpel"},
		{"/catalog", "Platform catalog"},
		{fmt.Sprintf("/projects/%d", pid), "nation-space"},
		{fmt.Sprintf("/projects/%d/experiments/%d/grammar", pid, eid), "Derived grammar"},
		{fmt.Sprintf("/projects/%d/experiments/%d/pool", pid, eid), "Query pool"},
		{fmt.Sprintf("/projects/%d/history", pid), "Experiment history"},
		{fmt.Sprintf("/projects/%d/diff?a=1&b=2", pid), "Query differential"},
	}
	for _, p := range pages {
		status, resp := c.do("GET", p.path, nil)
		if status != http.StatusOK {
			t.Errorf("GET %s = %d", p.path, status)
			continue
		}
		if !strings.Contains(resp["_raw"].(string), p.want) {
			t.Errorf("GET %s missing %q", p.path, p.want)
		}
	}
	// Unknown project pages 404.
	if status, _ := c.do("GET", "/projects/999", nil); status != http.StatusNotFound {
		t.Errorf("missing project page = %d", status)
	}
}

func TestServerWithPreloadedStore(t *testing.T) {
	store := repository.NewStore()
	if _, err := store.RegisterUser("preloaded", "p@example.org"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateProject("preloaded", "existing", "", true); err != nil {
		t.Fatal(err)
	}
	s := New(Options{Store: store})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/projects")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "existing") {
		t.Errorf("preloaded project missing: %s", body)
	}
}

func TestBatchTaskLeasing(t *testing.T) {
	c, _ := newTestClient(t)
	c.token = c.register("martin", "martin@example.org")
	_, eid, key := createProjectWithExperiment(t, c)

	// max > 1 switches to the batch wire format: {"tasks": [...]}.
	status, resp := c.do("POST", "/api/task/request", map[string]any{
		"key": key, "experiment_id": eid, "dbms": "columba-1.0", "platform": "laptop", "max": 3,
	})
	if status != http.StatusOK {
		t.Fatalf("batch request = %d %v", status, resp)
	}
	tasks, ok := resp["tasks"].([]any)
	if !ok || len(tasks) == 0 || len(tasks) > 3 {
		t.Fatalf("batch = %v", resp["tasks"])
	}
	seen := map[float64]bool{}
	for _, raw := range tasks {
		task := raw.(map[string]any)
		qid := task["query_id"].(float64)
		if seen[qid] {
			t.Errorf("query %v leased twice in one batch", qid)
		}
		seen[qid] = true
		if task["sql"].(string) == "" {
			t.Error("leased task without SQL")
		}
		// Complete every lease so the queue drains.
		status, _ := c.do("POST", "/api/task/complete", map[string]any{
			"key": key, "task_id": int(task["id"].(float64)), "seconds": []float64{0.01}, "error": "",
		})
		if status != http.StatusCreated {
			t.Fatalf("complete = %d", status)
		}
	}

	// Drain the rest, then the batch endpoint answers 204 like the single
	// one does.
	for i := 0; i < 100; i++ {
		status, resp = c.do("POST", "/api/task/request", map[string]any{
			"key": key, "experiment_id": eid, "dbms": "columba-1.0", "platform": "laptop", "max": 10,
		})
		if status == http.StatusNoContent {
			break
		}
		if status != http.StatusOK {
			t.Fatalf("batch request = %d %v", status, resp)
		}
		for _, raw := range resp["tasks"].([]any) {
			task := raw.(map[string]any)
			c.do("POST", "/api/task/complete", map[string]any{
				"key": key, "task_id": int(task["id"].(float64)), "seconds": []float64{0.01}, "error": "",
			})
		}
	}
	if status != http.StatusNoContent {
		t.Fatalf("drained batch request = %d, want 204", status)
	}

	// Omitting max keeps the original single-task wire format (the one the
	// pre-batch drivers speak): a bare task object, not a list.
	status, resp = c.do("POST", "/api/task/request", map[string]any{
		"key": key, "experiment_id": eid, "dbms": "tuplestore-1.0", "platform": "laptop",
	})
	if status != http.StatusOK {
		t.Fatalf("single request = %d %v", status, resp)
	}
	if _, isBatch := resp["tasks"]; isBatch {
		t.Error("single-task request must not use the batch wire format")
	}
	if resp["sql"].(string) == "" {
		t.Error("single task without SQL")
	}
}

func TestLostLeaseCompletionAnswers409(t *testing.T) {
	c, _ := newTestClient(t)
	c.token = c.register("martin", "martin@example.org")
	_, eid, key := createProjectWithExperiment(t, c)

	status, resp := c.do("POST", "/api/task/request", map[string]any{
		"key": key, "experiment_id": eid, "dbms": "columba-1.0", "platform": "laptop",
	})
	if status != http.StatusOK {
		t.Fatalf("request = %d", status)
	}
	taskID := int(resp["id"].(float64))
	if status, _ := c.do("POST", "/api/task/complete", map[string]any{
		"key": key, "task_id": taskID, "seconds": []float64{0.01}, "error": "",
	}); status != http.StatusCreated {
		t.Fatalf("first completion = %d", status)
	}
	// The lease is spent: a second completion is a lost-lease conflict (409,
	// driver skips), not an authorization failure (403, driver aborts).
	if status, _ := c.do("POST", "/api/task/complete", map[string]any{
		"key": key, "task_id": taskID, "seconds": []float64{0.02}, "error": "",
	}); status != http.StatusConflict {
		t.Errorf("lost-lease completion = %d, want 409", status)
	}
	// A wrong key stays 403.
	if status, _ := c.do("POST", "/api/task/complete", map[string]any{
		"key": "wrong", "task_id": taskID, "seconds": []float64{0.02}, "error": "",
	}); status != http.StatusForbidden {
		t.Errorf("wrong-key completion = %d, want 403", status)
	}
}

// TestTracePageSideBySide drives the observability acceptance path over the
// wire: two targets complete the same query with operator traces, and the
// project's trace page renders their span trees side by side, keyed by the
// shared plan operator ids, with the operator-level ratio table.
func TestTracePageSideBySide(t *testing.T) {
	c, _ := newTestClient(t)
	c.token = c.register("martin", "martin@example.org")
	pid, eid, key := createProjectWithExperiment(t, c)

	traceFor := func(engine string, scale int64) map[string]any {
		return map[string]any{
			"schema_version": 1,
			"engine":         engine,
			"spans": []map[string]any{
				{"op": "scan.0", "kind": "scan", "wall_ns": 100000 * scale, "rows": 25},
				{"op": "filter", "kind": "filter", "wall_ns": 40000 * scale, "rows": 5},
				{"op": "project", "kind": "project", "wall_ns": 10000 * scale, "rows": 5},
			},
		}
	}
	var queryID int
	for i, target := range []struct {
		dbms  string
		scale int64
	}{{"columba-1.0", 7}, {"vektor-1.0", 1}} {
		status, resp := c.do("POST", "/api/task/request", map[string]any{
			"key": key, "experiment_id": eid, "dbms": target.dbms, "platform": "laptop",
		})
		if status != http.StatusOK {
			t.Fatalf("task request (%s) = %d", target.dbms, status)
		}
		qid := int(resp["query_id"].(float64))
		if i == 0 {
			queryID = qid
		} else if qid != queryID {
			t.Fatalf("targets leased different queries: %d vs %d", queryID, qid)
		}
		status, resp = c.do("POST", "/api/task/complete", map[string]any{
			"key": key, "task_id": int(resp["id"].(float64)), "seconds": []float64{0.05},
			"error": "", "trace": traceFor(target.dbms, target.scale),
		})
		if status != http.StatusCreated {
			t.Fatalf("task complete (%s) = %d %v", target.dbms, status, resp)
		}
	}

	// The project page links to the trace.
	status, resp := c.do("GET", fmt.Sprintf("/projects/%d", pid), nil)
	if status != http.StatusOK || !strings.Contains(resp["_raw"].(string), fmt.Sprintf("/trace?query=%d", queryID)) {
		t.Fatalf("project page missing trace link: %d", status)
	}

	status, resp = c.do("GET", fmt.Sprintf("/projects/%d/trace?query=%d", pid, queryID), nil)
	if status != http.StatusOK {
		t.Fatalf("trace page = %d", status)
	}
	page := resp["_raw"].(string)
	for _, want := range []string{
		"columba-1.0@laptop", "vektor-1.0@laptop", // both targets side by side
		"scan.0", "filter", "project", // spans keyed by plan operator ids
		"Operator-level ratio", "7.00x", // the attribution table with the 7x kind ratio
	} {
		if !strings.Contains(page, want) {
			t.Errorf("trace page missing %q", want)
		}
	}

	// A malformed trace payload is rejected, not silently dropped.
	status, resp = c.do("POST", "/api/task/request", map[string]any{
		"key": key, "experiment_id": eid, "dbms": "columba-1.0", "platform": "laptop",
	})
	if status != http.StatusOK {
		t.Fatalf("task request = %d", status)
	}
	if status, _ = c.do("POST", "/api/task/complete", map[string]any{
		"key": key, "task_id": int(resp["id"].(float64)), "seconds": []float64{0.05},
		"error": "", "trace": "not-a-trace",
	}); status != http.StatusBadRequest {
		t.Errorf("malformed trace completion = %d, want 400", status)
	}
}
