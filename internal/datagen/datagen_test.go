package datagen

import (
	"testing"
	"testing/quick"

	"sqalpel/internal/engine"
)

func TestTPCHSchemaAndSizes(t *testing.T) {
	db := TPCH(TPCHOptions{ScaleFactor: 0.001})
	wantTables := []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"}
	for _, name := range wantTables {
		if db.Table(name) == nil {
			t.Errorf("missing table %s", name)
		}
	}
	if got := db.Table("region").NumRows(); got != 5 {
		t.Errorf("region rows = %d, want 5", got)
	}
	if got := db.Table("nation").NumRows(); got != 25 {
		t.Errorf("nation rows = %d, want 25", got)
	}
	orders := db.Table("orders").NumRows()
	lineitem := db.Table("lineitem").NumRows()
	if orders < 1000 {
		t.Errorf("orders rows = %d, want >= 1000 at SF 0.001", orders)
	}
	if lineitem < orders {
		t.Errorf("lineitem (%d) should outnumber orders (%d)", lineitem, orders)
	}
	if got := db.Table("partsupp").NumRows(); got != db.Table("part").NumRows()*4 {
		t.Errorf("partsupp rows = %d, want 4x part rows", got)
	}
}

func TestTPCHScaling(t *testing.T) {
	small := TPCH(TPCHOptions{ScaleFactor: 0.001})
	large := TPCH(TPCHOptions{ScaleFactor: 0.002})
	if large.Table("lineitem").NumRows() <= small.Table("lineitem").NumRows() {
		t.Error("larger scale factor should produce more lineitem rows")
	}
	ratio := float64(large.Table("orders").NumRows()) / float64(small.Table("orders").NumRows())
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("orders should scale roughly linearly, ratio = %.2f", ratio)
	}
}

func TestTPCHDeterminism(t *testing.T) {
	a := TPCH(TPCHOptions{ScaleFactor: 0.001, Seed: 42})
	b := TPCH(TPCHOptions{ScaleFactor: 0.001, Seed: 42})
	ta, tb := a.Table("lineitem"), b.Table("lineitem")
	if ta.NumRows() != tb.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", ta.NumRows(), tb.NumRows())
	}
	for i := 0; i < 100 && i < ta.NumRows(); i++ {
		for c := 0; c < ta.NumColumns(); c++ {
			if ta.Value(i, c).String() != tb.Value(i, c).String() {
				t.Fatalf("row %d col %d differs: %s vs %s", i, c, ta.Value(i, c), tb.Value(i, c))
			}
		}
	}
}

func TestTPCHValueDomains(t *testing.T) {
	db := TPCH(TPCHOptions{ScaleFactor: 0.001})
	li := db.Table("lineitem")
	discountIdx := li.ColumnIndex("l_discount")
	taxIdx := li.ColumnIndex("l_tax")
	qtyIdx := li.ColumnIndex("l_quantity")
	shipIdx := li.ColumnIndex("l_shipdate")
	lo := engine.MustParseDate("1992-01-01")
	hi := engine.MustParseDate("1999-01-01")
	for i := 0; i < li.NumRows(); i++ {
		d := li.Value(i, discountIdx).Float()
		if d < 0 || d > 0.10001 {
			t.Fatalf("discount %f out of range", d)
		}
		tax := li.Value(i, taxIdx).Float()
		if tax < 0 || tax > 0.08001 {
			t.Fatalf("tax %f out of range", tax)
		}
		q := li.Value(i, qtyIdx).Float()
		if q < 1 || q > 50 {
			t.Fatalf("quantity %f out of range", q)
		}
		sd := li.Value(i, shipIdx)
		if sd.Kind != engine.KindDate || sd.I < lo || sd.I > hi {
			t.Fatalf("shipdate %s out of range", sd)
		}
	}

	// Referential integrity: every lineitem orderkey exists in orders.
	orderKeys := map[int64]bool{}
	ot := db.Table("orders")
	okIdx := ot.ColumnIndex("o_orderkey")
	for i := 0; i < ot.NumRows(); i++ {
		orderKeys[ot.Value(i, okIdx).I] = true
	}
	loIdx := li.ColumnIndex("l_orderkey")
	for i := 0; i < li.NumRows(); i++ {
		if !orderKeys[li.Value(i, loIdx).I] {
			t.Fatalf("lineitem row %d references missing order %d", i, li.Value(i, loIdx).I)
		}
	}

	// Selectivity targets of the standard predicates must be non-empty.
	counts := map[string]int{}
	ct := db.Table("customer")
	segIdx := ct.ColumnIndex("c_mktsegment")
	for i := 0; i < ct.NumRows(); i++ {
		counts[ct.Value(i, segIdx).S]++
	}
	if counts["BUILDING"] == 0 {
		t.Error("no BUILDING customers generated; Q3 would be empty")
	}
	pt := db.Table("part")
	brandIdx := pt.ColumnIndex("p_brand")
	brands := map[string]bool{}
	for i := 0; i < pt.NumRows(); i++ {
		brands[pt.Value(i, brandIdx).S] = true
	}
	if !brands["Brand#23"] && !brands["Brand#12"] {
		t.Error("expected standard brands to be generated")
	}
}

func TestSSBSchema(t *testing.T) {
	db := SSB(SSBOptions{ScaleFactor: 0.0005})
	for _, name := range []string{"lineorder", "dates", "customer", "supplier", "part"} {
		if db.Table(name) == nil {
			t.Errorf("missing table %s", name)
		}
	}
	if got := db.Table("dates").NumRows(); got < 2500 {
		t.Errorf("dates rows = %d, want the 7 year calendar", got)
	}
	lo := db.Table("lineorder")
	if lo.NumRows() < 100 {
		t.Errorf("lineorder rows = %d, too few", lo.NumRows())
	}
	// Revenue must be consistent with price and discount.
	priceIdx := lo.ColumnIndex("lo_extendedprice")
	discIdx := lo.ColumnIndex("lo_discount")
	revIdx := lo.ColumnIndex("lo_revenue")
	for i := 0; i < 50; i++ {
		price := lo.Value(i, priceIdx).Float()
		disc := lo.Value(i, discIdx).Float()
		rev := lo.Value(i, revIdx).Float()
		want := price * (1 - disc/100)
		if diff := rev - want; diff > 0.001 || diff < -0.001 {
			t.Fatalf("row %d revenue %f, want %f", i, rev, want)
		}
	}
}

func TestAirtrafficSchema(t *testing.T) {
	db := Airtraffic(AirtrafficOptions{Flights: 2000})
	fl := db.Table("flights")
	if fl == nil || fl.NumRows() != 2000 {
		t.Fatalf("flights table missing or wrong size")
	}
	cancelledIdx := fl.ColumnIndex("cancelled")
	depIdx := fl.ColumnIndex("dep_delay")
	origIdx := fl.ColumnIndex("origin")
	destIdx := fl.ColumnIndex("dest")
	cancelledSeen := false
	for i := 0; i < fl.NumRows(); i++ {
		if fl.Value(i, origIdx).S == fl.Value(i, destIdx).S {
			t.Fatalf("row %d has identical origin and destination", i)
		}
		if fl.Value(i, cancelledIdx).I == 1 {
			cancelledSeen = true
			if !fl.Value(i, depIdx).IsNull() {
				t.Fatalf("cancelled flight %d should have NULL dep_delay", i)
			}
		}
	}
	if !cancelledSeen {
		t.Error("expected some cancelled flights")
	}
}

func TestFuzzSchema(t *testing.T) {
	db := Fuzz(FuzzOptions{Rows: 500})
	ft := db.Table("t")
	if ft == nil || ft.NumRows() != 500 {
		t.Fatalf("fuzz fact table missing or wrong size")
	}
	dim := db.Table("dim")
	if dim == nil || dim.NumRows() != 8 {
		t.Fatalf("fuzz dim table missing or wrong size")
	}
	// Key columns must be NULL-free; every nullable column must carry a
	// meaningful mix of NULLs and values — that mix is the whole point of
	// the data set.
	for _, keyCol := range []string{"id", "k"} {
		ci := ft.ColumnIndex(keyCol)
		for i := 0; i < ft.NumRows(); i++ {
			if ft.Value(i, ci).IsNull() {
				t.Fatalf("key column %s has a NULL at row %d", keyCol, i)
			}
		}
	}
	for _, nullCol := range []string{"a", "b", "f", "s", "d", "g"} {
		ci := ft.ColumnIndex(nullCol)
		nulls := 0
		for i := 0; i < ft.NumRows(); i++ {
			if ft.Value(i, ci).IsNull() {
				nulls++
			}
		}
		frac := float64(nulls) / float64(ft.NumRows())
		if frac < 0.1 || frac > 0.6 {
			t.Errorf("column %s NULL fraction %.2f outside [0.1, 0.6]", nullCol, frac)
		}
	}
}

func TestFuzzDeterminism(t *testing.T) {
	a := Fuzz(FuzzOptions{Rows: 200, Seed: 7})
	b := Fuzz(FuzzOptions{Rows: 200, Seed: 7})
	ta, tb := a.Table("t"), b.Table("t")
	for i := 0; i < ta.NumRows(); i++ {
		for c := 0; c < ta.NumColumns(); c++ {
			va, vb := ta.Value(i, c), tb.Value(i, c)
			if va != vb {
				t.Fatalf("row %d col %d differs between identical seeds: %v vs %v", i, c, va, vb)
			}
		}
	}
	other := Fuzz(FuzzOptions{Rows: 200, Seed: 8})
	diff := false
	to := other.Table("t")
	for i := 0; i < ta.NumRows() && !diff; i++ {
		for c := 0; c < ta.NumColumns(); c++ {
			if ta.Value(i, c) != to.Value(i, c) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestNamedDatabase(t *testing.T) {
	for _, name := range []string{"tpch", "ssb", "airtraffic", "fuzz"} {
		db, err := NamedDatabase(name, 0.001)
		if err != nil {
			t.Errorf("NamedDatabase(%s) failed: %v", name, err)
			continue
		}
		if db.TotalRows() == 0 {
			t.Errorf("NamedDatabase(%s) produced no rows", name)
		}
	}
	if _, err := NamedDatabase("oracle", 1); err == nil {
		t.Error("unknown data set should fail")
	}
}

func TestRNGProperties(t *testing.T) {
	// The generator must be deterministic for a given seed and must cover
	// its range.
	f := func(seed uint64, n uint8) bool {
		limit := int(n%50) + 1
		a, b := newRNG(seed), newRNG(seed)
		for i := 0; i < 20; i++ {
			x, y := a.Intn(limit), b.Intn(limit)
			if x != y {
				return false
			}
			if x < 0 || x >= limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Range bounds are inclusive.
	g := func(seed uint64) bool {
		r := newRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Range(3, 7)
			if v < 3 || v > 7 {
				return false
			}
			fl := r.Float()
			if fl < 0 || fl >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
