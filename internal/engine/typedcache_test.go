package engine

import (
	"sync"
	"testing"

	"sqalpel/internal/vexec"
)

// cacheFixture builds a database with one string-keyed table big enough to
// span several zone blocks.
func cacheFixture(rows int) (*Database, *Table) {
	words := []string{"alpha", "beta", "gamma"}
	tab := NewTable("t",
		Column{Name: "s", Type: TypeString},
		Column{Name: "x", Type: TypeInt},
	)
	for i := 0; i < rows; i++ {
		tab.MustAppendRow(NewString(words[i%len(words)]), NewInt(int64(i)))
	}
	db := NewDatabase("d")
	db.AddTable(tab)
	return db, tab
}

// TestTypedCacheRebuildsEncodingsOnVersionBump pins the invalidation
// contract of the typed import under the new storage encodings: a data
// mutation bumps the table version, and the next import rebuilds the typed
// table — including its string dictionary and zone maps — exactly once.
func TestTypedCacheRebuildsEncodingsOnVersionBump(t *testing.T) {
	db, tab := cacheFixture(2500)
	tc := newTypedCache()

	vt1, err := tc.typedTable(db, tab)
	if err != nil {
		t.Fatal(err)
	}
	if d := vt1.DictFor("s"); d == nil || d.Len() != 3 {
		t.Fatalf("imported dictionary = %v, want 3 entries", d)
	}
	if nb := vt1.NumZoneBlocks(); nb != 3 {
		t.Fatalf("zone blocks = %d, want 3 for 2500 rows", nb)
	}
	if again, _ := tc.typedTable(db, tab); again != vt1 {
		t.Fatal("unchanged version was re-imported")
	}
	if tc.builds != 1 {
		t.Fatalf("builds = %d after two same-version imports, want 1", tc.builds)
	}

	// A mutation invalidates: the rebuilt table must carry the new value in
	// its dictionary and cover the appended row with its zone maps.
	tab.MustAppendRow(NewString("zeta"), NewInt(9999))
	vt2, err := tc.typedTable(db, tab)
	if err != nil {
		t.Fatal(err)
	}
	if vt2 == vt1 {
		t.Fatal("version bump served the stale typed table")
	}
	if d := vt2.DictFor("s"); d == nil || d.Len() != 4 {
		t.Fatalf("rebuilt dictionary = %v, want 4 entries including the appended value", d)
	}
	if _, ok := vt2.DictFor("s").Code("zeta"); !ok {
		t.Fatal("rebuilt dictionary misses the appended value")
	}
	if nb := vt2.NumZoneBlocks(); nb != 3 {
		t.Fatalf("rebuilt zone blocks = %d, want 3 for 2501 rows", nb)
	}
	if tc.builds != 2 {
		t.Fatalf("builds = %d after one invalidation, want 2", tc.builds)
	}
}

// TestTypedCacheConcurrentBuildOnce races many importers of one table
// version against each other: every caller must receive the same typed
// table and the decode (with its dictionary and zone-map construction) must
// run exactly once.
func TestTypedCacheConcurrentBuildOnce(t *testing.T) {
	db, tab := cacheFixture(5000)
	tc := newTypedCache()

	const goroutines = 32
	results := make([]*vexec.Table, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			vt, err := tc.typedTable(db, tab)
			results[g], errs[g] = vt, err
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if results[g] != results[0] {
			t.Fatalf("goroutine %d received a different typed table", g)
		}
	}
	if results[0] == nil {
		t.Fatal("no typed table built")
	}
	if tc.builds != 1 {
		t.Fatalf("builds = %d across %d concurrent importers, want 1", tc.builds, goroutines)
	}
}
