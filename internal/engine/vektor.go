package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"sqalpel/internal/plan"
	"sqalpel/internal/vexec"
)

// vektorEngine is the third execution paradigm next to the row and column
// interpreters: the batch-vectorized executor of internal/vexec ("vektor"),
// working on typed unboxed vectors with selection vectors. The adapter owns
// the column-import shim — engine.Database stores boxed []Value columns,
// which are decoded into typed vectors once per table data version and
// cached — and routes to the interpreter from the plan's precomputed
// Vectorizable verdict; only data-dependent value shapes (mixed-kind
// columns, eager-evaluation type errors) still fall back at runtime.
type vektorEngine struct {
	name        string
	version     string
	dialect     string
	batchSize   int
	parallelism int
	fallback    *baseEngine
	plans       *plan.Cache
	typed       *typedCache
}

// typedTableEntry pins the typed decoding of one table to the data version
// it was built from; any mutation (append or in-place update) bumps the
// version and invalidates the entry. The owning database is recorded so a
// reloaded table (Database.AddTable with a fresh *Table under the same
// name) evicts only its own predecessors, never a same-named table of
// another database served by the same engine. Entries are installed as
// placeholders before the decode runs: ready closes once vt/err are set,
// so concurrent importers of one version wait for the single build instead
// of decoding (and dictionary-encoding) the columns again.
type typedTableEntry struct {
	version uint64
	vt      *vexec.Table
	db      *Database
	ready   chan struct{}
	err     error
}

// VektorOptions tune the vectorized engine variant.
type VektorOptions struct {
	// Version overrides the reported version string.
	Version string
	// BatchSize overrides the pipeline batch size (default 1024); the 2.0
	// release quadruples it, trading per-batch overhead against cache
	// residency the way columba 2.0 drops its guard casts.
	BatchSize int
	// Parallelism is the default intra-query morsel worker cap applied
	// when ExecOptions does not set one; 0 or 1 executes serially. Results
	// are bit-identical at every worker count.
	Parallelism int
}

// NewVektorEngine returns the batch-vectorized engine ("vektor 1.0"):
// typed columnar vectors, selection-vector filters, batch-at-a-time
// pull-based pipelines of 1024 rows.
func NewVektorEngine() Engine {
	return NewVektorEngineWithOptions(VektorOptions{})
}

// NewVektorEngineWithOptions returns a tuned vectorized engine variant,
// used to compare two releases of the same system.
func NewVektorEngineWithOptions(opts VektorOptions) Engine {
	version := opts.Version
	if version == "" {
		version = "1.0"
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = vexec.DefaultBatchSize
	}
	return &vektorEngine{
		name:        "vektor",
		version:     version,
		dialect:     "vektor",
		batchSize:   batchSize,
		parallelism: opts.Parallelism,
		fallback:    &baseEngine{name: "vektor", version: version, dialect: "vektor", mode: ModeColumn},
		plans:       plan.NewCache(0),
		typed:       newTypedCache(),
	}
}

func (e *vektorEngine) Name() string    { return e.name }
func (e *vektorEngine) Version() string { return e.version }
func (e *vektorEngine) Dialect() string { return e.dialect }

// SetPlanCache implements PlanCached.
func (e *vektorEngine) SetPlanCache(c *plan.Cache) { e.plans = c }

// PlanCacheStats implements PlanCached.
func (e *vektorEngine) PlanCacheStats() (hits, misses uint64) {
	if e.plans == nil {
		return 0, 0
	}
	return e.plans.Stats()
}

// Execute resolves the shared logical plan and routes on its Vectorizable
// verdict: supported statements compile into the vectorized executor,
// everything else goes straight to the column interpreter — consuming the
// same plan, so neither path re-parses or re-analyzes.
func (e *vektorEngine) Execute(db *Database, sql string, opts ExecOptions) (*Result, error) {
	p, err := planFor(e.plans, db, sql)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.name, err)
	}
	if !p.Vectorizable {
		return e.fallback.ExecutePlan(db, p, opts)
	}
	vopts := vexec.Options{BatchSize: e.batchSize, MaxJoinRows: opts.MaxJoinRows, Parallelism: e.parallelism, Tracer: opts.Tracer}
	if opts.Parallelism > 0 {
		vopts.Parallelism = opts.Parallelism
	}
	if opts.Timeout > 0 {
		vopts.Deadline = time.Now().Add(opts.Timeout)
	}
	res, err := vexec.ExecutePlan(&typedCatalog{cache: e.typed, db: db}, p, vopts)
	if err != nil {
		if errors.Is(err, vexec.ErrUnsupported) {
			// Runtime value shapes outside the typed subset defer to the
			// interpreter, re-using the plan. An aborted vectorized attempt
			// may have recorded partial spans; drop them so the trace
			// reflects the run that actually produced the result.
			opts.Tracer.Reset()
			return e.fallback.ExecutePlan(db, p, opts)
		}
		return nil, fmt.Errorf("%s: %w", e.name, err)
	}

	out := &Result{
		Columns: res.Columns,
		Stats: Stats{
			RowsScanned:        res.Stats.RowsScanned,
			Batches:            res.Stats.Batches,
			FilterPasses:       res.Stats.FilterPasses,
			HashJoins:          res.Stats.HashJoins,
			JoinBuildRows:      res.Stats.JoinBuildRows,
			JoinProbeRows:      res.Stats.JoinProbeRows,
			LoopJoins:          res.Stats.LoopJoins,
			Groups:             res.Stats.Groups,
			AggRows:            res.Stats.AggRows,
			RowsReturned:       res.Stats.RowsReturned,
			SubqueryExecutions: res.Stats.SubqueryExecutions,
			BlocksSkipped:      res.Stats.BlocksSkipped,
		},
	}
	n := res.NumRows()
	out.Rows = make([][]Value, n)
	for i := 0; i < n; i++ {
		row := make([]Value, len(res.Cols))
		for c, vec := range res.Cols {
			kind, iv, fv, sv := vec.ValueAt(i)
			switch kind {
			case vexec.KindNull:
				row[c] = Null()
			case vexec.KindBool:
				row[c] = Value{Kind: KindBool, I: iv}
			case vexec.KindInt:
				row[c] = NewInt(iv)
			case vexec.KindFloat:
				row[c] = NewFloat(fv)
			case vexec.KindString:
				row[c] = NewString(sv)
			case vexec.KindDate:
				row[c] = NewDate(iv)
			}
		}
		out.Rows[i] = row
	}
	return out, nil
}

// typedCache holds the typed decodings of boxed tables, shared by every
// engine consuming the typed columnar form (the vectorized and compiled
// paradigms each own one instance).
type typedCache struct {
	mu     sync.Mutex
	cache  map[*Table]*typedTableEntry
	builds uint64 // decode passes actually run, for the build-once tests
}

// newTypedCache returns an empty typed-table cache.
func newTypedCache() *typedCache {
	return &typedCache{cache: map[*Table]*typedTableEntry{}}
}

// typedCatalog adapts an engine.Database to the typed-table catalog the
// vectorized and compiled executors consume, decoding boxed columns into
// typed vectors through a per-engine cache.
type typedCatalog struct {
	cache *typedCache
	db    *Database
}

// VTable returns the typed form of the named table.
func (c *typedCatalog) VTable(name string) (*vexec.Table, error) {
	t := c.db.Table(name)
	if t == nil {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return c.cache.typedTable(c.db, t)
}

// typedTable converts a boxed table into typed vectors, caching the result
// keyed by the table's data version — the same invalidation hook the plan
// cache uses — so mutating or reloading a table can never serve stale typed
// columns. Each version is decoded exactly once: the first caller installs
// a placeholder entry and builds outside the lock; concurrent callers of
// the same version block on the entry's ready channel and share the result.
func (tc *typedCache) typedTable(db *Database, t *Table) (*vexec.Table, error) {
	version := t.Version()
	tc.mu.Lock()
	if entry, ok := tc.cache[t]; ok && entry.version == version {
		tc.mu.Unlock()
		<-entry.ready
		return entry.vt, entry.err
	}
	entry := &typedTableEntry{version: version, db: db, ready: make(chan struct{})}
	// Drop superseded entries so a table reloaded via Database.AddTable (a
	// fresh *Table under the same name in the same database) cannot pin its
	// predecessors' typed copies forever; the size cap bounds pathological
	// churn on top. Evicting an in-flight placeholder is harmless: its
	// waiters hold the entry pointer and still receive the build's result.
	for old, oe := range tc.cache {
		if old != t && oe.db == db && strings.EqualFold(old.Name, t.Name) {
			delete(tc.cache, old)
		}
	}
	for old := range tc.cache {
		if len(tc.cache) < maxTypedTables {
			break
		}
		if old == t {
			continue
		}
		delete(tc.cache, old)
	}
	tc.cache[t] = entry
	tc.builds++
	tc.mu.Unlock()

	vt, err := buildTypedTable(t)
	tc.mu.Lock()
	if err != nil {
		// Leave no failed entry behind: the next caller retries the build.
		if tc.cache[t] == entry {
			delete(tc.cache, t)
		}
	} else {
		entry.vt = vt
	}
	entry.err = err
	tc.mu.Unlock()
	close(entry.ready)
	return vt, err
}

// buildTypedTable runs the full typed import of one boxed table: column
// decode, dictionary encoding and zone-map construction (both inside
// vexec.NewTable).
func buildTypedTable(t *Table) (*vexec.Table, error) {
	cols := make([]vexec.TableColumn, len(t.Columns))
	for ci, col := range t.Columns {
		vec, err := typedColumn(t.ColumnValues(ci))
		if err != nil {
			return nil, fmt.Errorf("%w: table %s column %s: %v", vexec.ErrUnsupported, t.Name, col.Name, err)
		}
		cols[ci] = vexec.TableColumn{Name: col.Name, Vec: vec}
	}
	return vexec.NewTable(t.Name, cols...), nil
}

// maxTypedTables bounds the typed-column import cache; workloads hold at
// most a dozen or so tables, so the cap only matters under churn.
const maxTypedTables = 64

// typedColumn decodes one boxed column into a typed vector through vexec's
// value builder, so boxed-storage decoding and the executor's own kind
// promotion (including the per-row int/float duality a float column may
// legally carry) share one algorithm. All-NULL columns become KindNull
// vectors, which behave identically to typed all-NULL vectors. Columns
// mixing incompatible kinds report ErrUnsupported, routing such databases
// to the interpreter.
func typedColumn(vals []Value) (*vexec.Vector, error) {
	vb := vexec.NewValueBuilder(len(vals))
	for _, v := range vals {
		switch v.Kind {
		case KindNull:
			vb.AppendNull()
		case KindBool:
			vb.Append(vexec.KindBool, v.I, 0, "")
		case KindInt:
			vb.Append(vexec.KindInt, v.I, 0, "")
		case KindFloat:
			vb.Append(vexec.KindFloat, 0, v.F, "")
		case KindString:
			vb.Append(vexec.KindString, 0, 0, v.S)
		case KindDate:
			vb.Append(vexec.KindDate, v.I, 0, "")
		default:
			vb.AppendNull()
		}
	}
	return vb.Finalize()
}
