package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// Report is the result of validating a grammar.
type Report struct {
	// Missing lists rule names that are referenced but never defined.
	Missing []string
	// Dead lists rules that are defined but not reachable from the start
	// rule (the paper's "dead code rules").
	Dead []string
	// Recursive lists rules that can reach themselves; they are legal but
	// the enumeration bounds their expansion.
	Recursive []string
	// EmptyLexical lists lexical rules without any literal alternative.
	EmptyLexical []string
}

// OK reports whether the grammar passed validation (missing references and
// empty lexical rules are errors; dead and recursive rules are warnings).
func (r Report) OK() bool {
	return len(r.Missing) == 0 && len(r.EmptyLexical) == 0
}

// String renders the report for humans.
func (r Report) String() string {
	var parts []string
	if len(r.Missing) > 0 {
		parts = append(parts, "missing rules: "+strings.Join(r.Missing, ", "))
	}
	if len(r.Dead) > 0 {
		parts = append(parts, "dead rules: "+strings.Join(r.Dead, ", "))
	}
	if len(r.Recursive) > 0 {
		parts = append(parts, "recursive rules: "+strings.Join(r.Recursive, ", "))
	}
	if len(r.EmptyLexical) > 0 {
		parts = append(parts, "empty lexical rules: "+strings.Join(r.EmptyLexical, ", "))
	}
	if len(parts) == 0 {
		return "grammar ok"
	}
	return strings.Join(parts, "; ")
}

// Check validates the grammar and returns a detailed report.
func (g *Grammar) Check() Report {
	var rep Report
	defined := map[string]bool{}
	for _, r := range g.Rules {
		defined[r.Name] = true
	}

	// Missing references.
	missing := map[string]bool{}
	for _, r := range g.Rules {
		for _, a := range r.Alternatives {
			for _, ref := range a.References() {
				if !defined[ref] && !missing[ref] {
					missing[ref] = true
					rep.Missing = append(rep.Missing, ref)
				}
			}
		}
	}
	sort.Strings(rep.Missing)

	// Reachability from the start rule.
	reach := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if reach[name] || !defined[name] {
			return
		}
		reach[name] = true
		r := g.Rule(name)
		for _, a := range r.Alternatives {
			for _, ref := range a.References() {
				visit(ref)
			}
		}
	}
	visit(g.Start)
	for _, r := range g.Rules {
		if !reach[r.Name] {
			rep.Dead = append(rep.Dead, r.Name)
		}
	}
	sort.Strings(rep.Dead)

	// Recursive rules: a rule that can reach itself through references.
	for _, r := range g.Rules {
		if g.canReach(r.Name, r.Name, map[string]bool{}) {
			rep.Recursive = append(rep.Recursive, r.Name)
		}
	}
	sort.Strings(rep.Recursive)

	// Lexical rules with zero literals (possible when every alternative is
	// dialect-tagged away or the rule only has reference alternatives that
	// were classified structurally elsewhere).
	for _, r := range g.Rules {
		if r.IsLexical() && len(r.Literals()) == 0 {
			rep.EmptyLexical = append(rep.EmptyLexical, r.Name)
		}
	}
	sort.Strings(rep.EmptyLexical)
	return rep
}

// canReach reports whether rule from can reach rule target through one or
// more reference steps.
func (g *Grammar) canReach(from, target string, seen map[string]bool) bool {
	r := g.Rule(from)
	if r == nil {
		return false
	}
	for _, a := range r.Alternatives {
		for _, ref := range a.References() {
			if ref == target {
				return true
			}
			if seen[ref] {
				continue
			}
			seen[ref] = true
			if g.canReach(ref, target, seen) {
				return true
			}
		}
	}
	return false
}

// Validate returns an error when the grammar has missing rule references or
// empty lexical rules. Dead and recursive rules are tolerated.
func (g *Grammar) Validate() error {
	rep := g.Check()
	if rep.OK() {
		return nil
	}
	var problems []string
	if len(rep.Missing) > 0 {
		problems = append(problems, "missing rules: "+strings.Join(rep.Missing, ", "))
	}
	if len(rep.EmptyLexical) > 0 {
		problems = append(problems, "empty lexical rules: "+strings.Join(rep.EmptyLexical, ", "))
	}
	return fmt.Errorf("invalid grammar: %s", strings.Join(problems, "; "))
}

// Normalize returns an equivalent grammar in the internal normal form used
// by enumeration:
//
//   - dead rules (unreachable from the start rule) are dropped,
//   - rules whose alternatives are all literal snippets are kept as lexical
//     rules, every other rule is structural,
//   - structural rules that mix literal-only alternatives with referencing
//     alternatives are rewritten so the literal alternatives move into a new
//     lexical helper rule named "<rule>_lit".
//
// The original grammar is not modified.
func (g *Grammar) Normalize() (*Grammar, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rep := g.Check()
	dead := map[string]bool{}
	for _, d := range rep.Dead {
		dead[d] = true
	}

	out := New(g.Start)
	for _, r := range g.Rules {
		if dead[r.Name] {
			continue
		}
		if r.IsLexical() {
			out.AddRule(&Rule{Name: r.Name, Line: r.Line, Alternatives: append([]Alternative(nil), r.Alternatives...)})
			continue
		}
		// Mixed rule: split literal alternatives into a helper lexical rule
		// when at least one alternative references other rules and at least
		// one is literal-only with more than one such literal. A single
		// literal alternative stays in place (it is part of the structure).
		var litAlts, structAlts []Alternative
		for _, a := range r.Alternatives {
			if a.IsLexical() {
				litAlts = append(litAlts, a)
			} else {
				structAlts = append(structAlts, a)
			}
		}
		if len(structAlts) == 0 || len(litAlts) <= 1 {
			out.AddRule(&Rule{Name: r.Name, Line: r.Line, Alternatives: append([]Alternative(nil), r.Alternatives...)})
			continue
		}
		helper := r.Name + "_lit"
		newRule := &Rule{Name: r.Name, Line: r.Line}
		newRule.Alternatives = append(newRule.Alternatives, structAlts...)
		newRule.Alternatives = append(newRule.Alternatives, Alternative{
			Line:     r.Line,
			Elements: []Element{{Ref: helper, Kind: RefRequired}},
		})
		out.AddRule(newRule)
		out.AddRule(&Rule{Name: helper, Line: r.Line, Alternatives: litAlts})
	}
	return out, nil
}
