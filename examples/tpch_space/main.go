// tpch_space derives a sqalpel grammar for each of the 22 TPC-H queries and
// prints the size of the resulting query space — the reproduction of the
// paper's Table 2. Complex queries explode combinatorially and are reported
// with the ">cap" notation, exactly as in the paper.
//
// Run with:
//
//	go run ./examples/tpch_space
package main

import (
	"fmt"
	"os"

	"sqalpel/internal/derive"
	"sqalpel/internal/grammar"
	"sqalpel/internal/workload"
)

func main() {
	opts := derive.DefaultOptions()
	enumOpts := grammar.EnumerateOptions{TemplateCap: grammar.DefaultTemplateCap, LiteralOnce: true}

	fmt.Println("TPC-H query space (tags, templates, concrete queries) per baseline query")
	fmt.Printf("%-5s %-6s %-10s %-14s %s\n", "query", "tags", "templates", "space", "name")
	for _, id := range workload.TPCHIDs() {
		q, _ := workload.TPCHQuery(id)
		sum, err := derive.Summary(q.SQL, opts, enumOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			continue
		}
		templates := fmt.Sprintf("%d", sum.Templates)
		space := fmt.Sprintf("%d", sum.Space)
		if sum.Capped {
			templates = fmt.Sprintf(">%d", sum.Templates)
			space = "-"
		}
		fmt.Printf("%-5s %-6d %-10s %-14s %s\n", q.ID, sum.Tags, templates, space, q.Name)
	}
	fmt.Println("\nqueries whose space exceeds the hard template cap are shown as \">cap -\"")
}
