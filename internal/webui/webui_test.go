package webui

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sqalpel/internal/analytics"
	"sqalpel/internal/catalog"
	"sqalpel/internal/repository"
)

func sampleProject() *repository.Project {
	return &repository.Project{
		ID: 1, Name: "tpch-q1", Synopsis: "Q1 variants", Owner: "martin", Public: true,
		Attribution:  "TPC-H inspired generator",
		Contributors: []*repository.Contributor{{Nickname: "martin", Key: "secret-key"}},
		Experiments: []*repository.Experiment{{
			ID: 1, Title: "Q1", BaselineSQL: "SELECT count(*) FROM lineitem",
			GrammarText: "query:\n\tSELECT ${l_projection} FROM lineitem\nl_projection:\n\tcount(*)\n",
			Queries: []repository.QueryRecord{
				{ID: 1, SQL: "SELECT count(*) FROM lineitem", Strategy: "baseline", Components: 1},
				{ID: 2, SQL: "SELECT l_quantity FROM lineitem", Strategy: "alter", ParentID: 1, Components: 1},
			},
			Created: time.Now(),
		}},
	}
}

func TestRenderAllPages(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	p := sampleProject()

	var buf bytes.Buffer
	if err := r.Index(&buf, IndexData{
		Viewer:    "martin",
		Projects:  []*repository.Project{p},
		DBMS:      catalog.Bootstrap().ListDBMS(),
		Platforms: catalog.Bootstrap().ListPlatforms(),
	}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tpch-q1", "columba", "Platform catalog", "signed in as"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("index page missing %q", want)
		}
	}

	buf.Reset()
	err = r.Project(&buf, ProjectData{
		Project: p,
		Results: []*repository.Result{
			{ID: 1, ExperimentID: 1, QueryID: 1, DBMSKey: "columba-1.0", PlatformKey: "laptop", Seconds: []float64{0.25}},
			{ID: 2, ExperimentID: 1, QueryID: 2, DBMSKey: "columba-1.0", PlatformKey: "laptop", Error: "boom"},
		},
		Comments: []*repository.Comment{{Author: "eve", Text: "document the indexes"}},
		Tasks:    []*repository.Task{{ID: 1, QueryID: 1, DBMSKey: "columba-1.0", PlatformKey: "laptop", Status: repository.TaskDone}},
	})
	if err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{"tpch-q1", "0.2500", "boom", "document the indexes", "done"} {
		if !strings.Contains(page, want) {
			t.Errorf("project page missing %q", want)
		}
	}
	if strings.Contains(page, "secret-key") {
		t.Error("contributor keys must never be rendered")
	}

	buf.Reset()
	if err := r.Grammar(&buf, GrammarData{Project: p, Experiment: p.Experiments[0]}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "l_projection") {
		t.Error("grammar page missing the grammar text")
	}

	buf.Reset()
	if err := r.Pool(&buf, PoolData{Project: p, Experiment: p.Experiments[0]}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "strategy-alter") {
		t.Error("pool page missing strategy colouring")
	}

	buf.Reset()
	err = r.History(&buf, HistoryData{
		Project: p, Target: "columba-1.0@laptop", Targets: []string{"columba-1.0@laptop"},
		Points: []analytics.HistoryPoint{
			{Seq: 1, QueryID: 1, Strategy: "baseline", Components: 1, Seconds: 0.25},
			{Seq: 2, QueryID: 2, ParentID: 1, Strategy: "alter", Components: 1, IsError: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "error") || !strings.Contains(buf.String(), "0.2500") {
		t.Error("history page missing error flag or timing")
	}

	buf.Reset()
	err = r.Diff(&buf, DiffData{
		Project: p,
		Diff: analytics.Differential{
			QueryA: 1, QueryB: 2,
			OnlyA: []string{"count(*)"}, OnlyB: []string{"l_quantity"},
			Times: map[string][2]float64{"columba-1.0@laptop": {0.25, 0.11}},
		},
		SQLA: p.Experiments[0].Queries[0].SQL,
		SQLB: p.Experiments[0].Queries[1].SQL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "l_quantity") || !strings.Contains(buf.String(), "0.1100") {
		t.Error("diff page incomplete")
	}
}

func TestTemplatesEscapeHTML(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	p := sampleProject()
	p.Experiments[0].Queries[0].SQL = "SELECT '<script>alert(1)</script>' FROM lineitem"
	var buf bytes.Buffer
	if err := r.Pool(&buf, PoolData{Project: p, Experiment: p.Experiments[0]}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert(1)</script>") {
		t.Error("query text must be HTML-escaped")
	}
}
