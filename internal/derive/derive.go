// Package derive converts a baseline SQL query into a sqalpel query-space
// grammar, following the heuristics described in the paper: the query is
// split along projection-list elements, table expressions, sub-queries,
// AND/OR expression terms, GROUP BY and ORDER BY terms; the remaining pieces
// become literal tokens of lexical rules.
//
// The resulting grammar describes a query space whose largest sentence is
// (equivalent to) the baseline query and whose other sentences are morphed
// variants obtained by dropping or swapping components.
package derive

import (
	"fmt"
	"strings"

	"sqalpel/internal/grammar"
	"sqalpel/internal/sqlparser"
)

// Options control the derivation heuristics.
type Options struct {
	// ExplicitJoinPaths keeps equality predicates that link columns of two
	// different tables (classic join edges) as a fixed part of the query
	// instead of optional filter terms. This is the manual grammar edit the
	// paper recommends to avoid a combinatorial explosion of semantically
	// silly cross products; it is on by default.
	ExplicitJoinPaths bool
	// SplitOrTerms expands a top-level OR conjunct into its own sub-rule so
	// individual OR arms can be toggled (important for queries such as
	// TPC-H Q19).
	SplitOrTerms bool
	// KeepLimit includes the LIMIT clause as an optional literal.
	KeepLimit bool
}

// DefaultOptions are the options used by the platform.
func DefaultOptions() Options {
	return Options{ExplicitJoinPaths: true, SplitOrTerms: true, KeepLimit: true}
}

// FromSQL parses the baseline query and derives its grammar.
func FromSQL(sql string, opts Options) (*grammar.Grammar, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("baseline query does not parse: %w", err)
	}
	return FromStatement(stmt, opts)
}

// FromStatement derives the grammar of an already parsed baseline query.
func FromStatement(stmt *sqlparser.SelectStatement, opts Options) (*grammar.Grammar, error) {
	if stmt.SetNext != nil {
		return nil, fmt.Errorf("set operations (UNION/EXCEPT/INTERSECT) are not supported as baseline queries")
	}
	d := &deriver{opts: opts, g: grammar.New("query")}
	if err := d.build(stmt); err != nil {
		return nil, err
	}
	if err := d.g.Validate(); err != nil {
		return nil, fmt.Errorf("derived grammar is invalid: %w", err)
	}
	return d.g, nil
}

type deriver struct {
	opts    Options
	g       *grammar.Grammar
	line    int
	orCount int
}

// nextLine hands out synthetic line numbers so every literal has a distinct
// identity, mirroring the paper's "differentiated by their line number".
func (d *deriver) nextLine() int {
	d.line++
	return d.line
}

func (d *deriver) addLexical(name string, texts []string) {
	r := &grammar.Rule{Name: name, Line: d.nextLine()}
	for _, t := range texts {
		r.Alternatives = append(r.Alternatives, grammar.Alternative{
			Line:     d.nextLine(),
			Elements: []grammar.Element{{Text: t}},
		})
	}
	d.g.AddRule(r)
}

func (d *deriver) addRule(name string, alts ...[]grammar.Element) {
	r := &grammar.Rule{Name: name, Line: d.nextLine()}
	for _, elems := range alts {
		r.Alternatives = append(r.Alternatives, grammar.Alternative{Line: d.nextLine(), Elements: elems})
	}
	d.g.AddRule(r)
}

func ref(name string) grammar.Element {
	return grammar.Element{Ref: name, Kind: grammar.RefRequired}
}

func opt(name string) grammar.Element {
	return grammar.Element{Ref: name, Kind: grammar.RefOptional}
}

func star(name string) grammar.Element {
	return grammar.Element{Ref: name, Kind: grammar.RefStar}
}

func lit(text string) grammar.Element {
	return grammar.Element{Text: text}
}

func (d *deriver) build(stmt *sqlparser.SelectStatement) error {
	var query []grammar.Element

	// SELECT [DISTINCT] ${projection}
	head := "SELECT"
	if stmt.Distinct {
		head = "SELECT DISTINCT"
	}
	query = append(query, lit(head), ref("projection"))

	// Projection: one lexical literal per projection-list element.
	var projTexts []string
	for _, item := range stmt.Projection {
		projTexts = append(projTexts, item.SQL())
	}
	if len(projTexts) == 0 {
		return fmt.Errorf("baseline query has an empty projection")
	}
	d.addRule("projection", []grammar.Element{ref("l_projection"), star("projectionlist")})
	d.addRule("projectionlist", []grammar.Element{lit(","), ref("l_projection")})
	d.addLexical("l_projection", projTexts)

	// FROM clause: the table expressions form a single literal; each comma
	// separated table expression is its own literal so that pruning can drop
	// unused tables, but the first one is required.
	if len(stmt.From) > 0 {
		query = append(query, lit("FROM"), ref("l_tables"))
		var fromTexts []string
		var full []string
		for _, t := range stmt.From {
			full = append(full, t.SQL())
		}
		fromTexts = append(fromTexts, strings.Join(full, ", "))
		d.addLexical("l_tables", fromTexts)
	}

	// WHERE clause: split into top-level conjuncts. Join-path predicates may
	// be kept mandatory; the rest become optional filter terms.
	if stmt.Where != nil {
		conjuncts := splitConjuncts(stmt.Where)
		var joinTexts, filterElems []string
		type orGroup struct {
			name string
			// arms holds, per OR arm, the conjunct texts of that arm; a
			// single-element slice is a plain literal arm.
			arms [][]string
		}
		var orGroups []orGroup
		for _, c := range conjuncts {
			if d.opts.ExplicitJoinPaths && isJoinPredicate(c) {
				joinTexts = append(joinTexts, c.SQL())
				continue
			}
			if d.opts.SplitOrTerms {
				if terms := splitDisjuncts(c); len(terms) > 1 {
					d.orCount++
					name := fmt.Sprintf("orterm%d", d.orCount)
					og := orGroup{name: name}
					for _, t := range terms {
						var armTexts []string
						for _, part := range splitConjuncts(t) {
							armTexts = append(armTexts, part.SQL())
						}
						og.arms = append(og.arms, armTexts)
					}
					orGroups = append(orGroups, og)
					continue
				}
			}
			filterElems = append(filterElems, c.SQL())
		}

		hasFilterRule := len(filterElems) > 0 || len(orGroups) > 0
		switch {
		case len(joinTexts) > 0 && hasFilterRule:
			query = append(query, lit("WHERE"), ref("l_joinpath"), ref("filter"))
		case len(joinTexts) > 0:
			query = append(query, lit("WHERE"), ref("l_joinpath"))
		case hasFilterRule:
			query = append(query, lit("WHERE"), ref("filterhead"))
		}
		if len(joinTexts) > 0 {
			d.addLexical("l_joinpath", []string{strings.Join(joinTexts, " AND ")})
		}

		if hasFilterRule {
			// filterhead is used when there is no mandatory join path: the
			// first filter term has no leading AND. filter always prefixes
			// its terms with AND.
			if len(joinTexts) == 0 {
				d.addRule("filterhead", []grammar.Element{ref("predicate"), star("filterlist")})
				d.addRule("filterlist", []grammar.Element{lit("AND"), ref("predicate")})
			} else {
				d.addRule("filter", []grammar.Element{star("filterand")})
				d.addRule("filterand", []grammar.Element{lit("AND"), ref("predicate")})
			}
			// predicate: plain literal terms plus one alternative per OR
			// group.
			var predAlts [][]grammar.Element
			if len(filterElems) > 0 {
				predAlts = append(predAlts, []grammar.Element{ref("l_predicate")})
			}
			for _, og := range orGroups {
				predAlts = append(predAlts, []grammar.Element{ref(og.name)})
			}
			d.addRule("predicate", predAlts...)
			if len(filterElems) > 0 {
				d.addLexical("l_predicate", filterElems)
			}
			for _, og := range orGroups {
				// Each OR group becomes
				//   ortermN:      ( ${ortermN_arm} ${ortermNlist}* )
				//   ortermNlist:  OR ${ortermN_arm}
				//   ortermN_arm:  one alternative per arm — either a plain
				//                 literal or a reference to the arm's own
				//                 AND-list structure, so complex arms (the
				//                 TPC-H Q19 pattern) can be pruned term by
				//                 term.
				listName := og.name + "list"
				armRule := og.name + "_arm"
				d.addRule(og.name, []grammar.Element{lit("("), ref(armRule), star(listName), lit(")")})
				d.addRule(listName, []grammar.Element{lit("OR"), ref(armRule)})

				var armAlts [][]grammar.Element
				var simpleTexts []string
				for m, armTexts := range og.arms {
					if len(armTexts) == 1 {
						simpleTexts = append(simpleTexts, armTexts[0])
						continue
					}
					armName := fmt.Sprintf("%s_arm%d", og.name, m+1)
					armList := armName + "list"
					armLit := "l_" + armName
					d.addRule(armName, []grammar.Element{lit("("), ref(armLit), star(armList), lit(")")})
					d.addRule(armList, []grammar.Element{lit("AND"), ref(armLit)})
					d.addLexical(armLit, armTexts)
					armAlts = append(armAlts, []grammar.Element{ref(armName)})
				}
				if len(simpleTexts) > 0 {
					simpleLit := "l_" + og.name
					d.addLexical(simpleLit, simpleTexts)
					armAlts = append(armAlts, []grammar.Element{ref(simpleLit)})
				}
				d.addRule(armRule, armAlts...)
			}
		}
	}

	// GROUP BY terms, with HAVING as an optional trailing literal.
	if len(stmt.GroupBy) > 0 {
		query = append(query, opt("groupby"))
		var terms []string
		for _, g := range stmt.GroupBy {
			terms = append(terms, g.SQL())
		}
		elems := []grammar.Element{lit("GROUP BY"), ref("l_group"), star("grouplist")}
		if stmt.Having != nil {
			elems = append(elems, opt("l_having"))
			d.addLexical("l_having", []string{"HAVING " + stmt.Having.SQL()})
		}
		d.addRule("groupby", elems)
		d.addRule("grouplist", []grammar.Element{lit(","), ref("l_group")})
		d.addLexical("l_group", terms)
	}

	// ORDER BY terms.
	if len(stmt.OrderBy) > 0 {
		query = append(query, opt("orderby"))
		var terms []string
		for _, o := range stmt.OrderBy {
			terms = append(terms, o.SQL())
		}
		d.addRule("orderby", []grammar.Element{lit("ORDER BY"), ref("l_order"), star("orderlist")})
		d.addRule("orderlist", []grammar.Element{lit(","), ref("l_order")})
		d.addLexical("l_order", terms)
	}

	// LIMIT / OFFSET.
	if d.opts.KeepLimit && stmt.Limit != nil {
		query = append(query, opt("l_limit"))
		text := fmt.Sprintf("LIMIT %d", *stmt.Limit)
		if stmt.Offset != nil {
			text += fmt.Sprintf(" OFFSET %d", *stmt.Offset)
		}
		d.addLexical("l_limit", []string{text})
	}

	// The start rule ties everything together. It must be registered even
	// though AddRule was already called for the others; New() set the start
	// name to "query".
	startRule := &grammar.Rule{Name: "query", Line: 0}
	startRule.Alternatives = append(startRule.Alternatives, grammar.Alternative{Line: 0, Elements: query})
	d.g.AddRule(startRule)
	return nil
}

// splitConjuncts flattens a boolean expression into its top-level AND terms.
func splitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.Left), splitConjuncts(be.Right)...)
	}
	if pe, ok := e.(*sqlparser.ParenExpr); ok {
		inner := splitConjuncts(pe.Expr)
		if len(inner) > 1 {
			return inner
		}
	}
	return []sqlparser.Expr{e}
}

// splitDisjuncts flattens a boolean expression into its top-level OR terms;
// a single-element result means the expression is not a disjunction.
func splitDisjuncts(e sqlparser.Expr) []sqlparser.Expr {
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		if v.Op == "OR" {
			return append(splitDisjuncts(v.Left), splitDisjuncts(v.Right)...)
		}
	case *sqlparser.ParenExpr:
		return splitDisjuncts(v.Expr)
	}
	return []sqlparser.Expr{e}
}

// isJoinPredicate reports whether the expression is a simple equality
// between two column references that (judging by their prefixes or
// qualifiers) belong to different tables — the classic join edge of a
// comma-join query.
func isJoinPredicate(e sqlparser.Expr) bool {
	be, ok := e.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	l, lok := be.Left.(*sqlparser.ColumnRef)
	r, rok := be.Right.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return false
	}
	return columnFamily(l) != columnFamily(r)
}

// columnFamily guesses which table a column belongs to: the explicit
// qualifier when present, otherwise the TPC-H style prefix before the first
// underscore (l_, o_, c_, ps_, ...).
func columnFamily(c *sqlparser.ColumnRef) string {
	if c.Table != "" {
		return c.Table
	}
	if i := strings.Index(c.Column, "_"); i > 0 {
		return c.Column[:i]
	}
	return c.Column
}

// Summary derives the grammar for a query and returns its space summary; a
// convenience used by the Table 2 reproduction.
func Summary(sql string, opts Options, enumOpts grammar.EnumerateOptions) (grammar.SpaceSummary, error) {
	g, err := FromSQL(sql, opts)
	if err != nil {
		return grammar.SpaceSummary{}, err
	}
	return g.Space(enumOpts)
}
