package vexec

import (
	"fmt"

	"sqalpel/internal/plan"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/trace"
)

// subState is the per-execution materialization of one nested sub-query.
// Uncorrelated sub-queries run exactly once: a scalar site reads scalarVal, an
// EXISTS site reads exists, an IN site probes the membership set. Correlated
// sub-queries are decorrelated per the plan's Apply recipe: their own FROM
// pipeline is built and hashed once by the inner correlation keys, and every
// use site probes that build with the outer keys instead of re-running the
// statement per outer row.
//
// All states are built by prepareSubqueries before the enclosing pipeline
// starts and never mutated afterwards, so probes are safe from morsel workers.
type subState struct {
	correlated bool

	// Uncorrelated materialization.
	scalarVal  scalar          // first row of the first column; NULL when empty
	exists     bool            // any result rows
	set        map[string]bool // non-NULL first-column keys (appendScalarKey)
	setHasNull bool            // the first column had a NULL row
	setEmpty   bool            // the result was entirely empty (no rows at all)

	// Correlated decorrelation.
	apply *applyState
}

// applyState is the hash build of one decorrelated correlated sub-query: the
// inner side materialized once, grouped by the inner correlation keys in
// first-seen order with per-group row chains in inner-row order — the same
// ordering discipline as the join tables, which is what keeps ApplyFirst's
// "first matching row" identical to the interpreter's per-outer-row run.
type applyState struct {
	shape         plan.ApplyShape
	outerKeys     []sqlparser.Expr
	pairConjuncts []sqlparser.Expr

	inner  *Batch           // dense inner-side rows
	groups map[string]int32 // encoded inner key -> group id
	lists  joinLists        // per-group inner-row chains in row order

	projVals  *Vector // per inner row: the projected value (ApplyIn/ApplyFirst)
	groupVals *Vector // per group: the aggregated projection (ApplyAgg)
	emptyVal  scalar  // ApplyAgg value of an empty group (count 0, NULL sums)
}

// prepareSubqueries materializes the sub-query states of one SELECT core,
// numbering them along the same clause walk the trace layer's plan JSON uses
// so the sub-query spans land on plan-known operator ids.
func (ex *executor) prepareSubqueries(stmt *sqlparser.SelectStatement, prefix string) error {
	for k, s := range trace.CoreSubqueries(stmt) {
		if _, ok := ex.subs[s]; ok {
			continue
		}
		subPrefix := noTracePrefix
		if ex.traceOn(prefix) {
			subPrefix = trace.SubPrefix(prefix, k)
		}
		if err := ex.prepareSub(s, subPrefix); err != nil {
			return err
		}
	}
	return nil
}

// prepareSub materializes one sub-query state.
func (ex *executor) prepareSub(s *sqlparser.SelectStatement, subPrefix string) error {
	sp := ex.p.Sub(s)
	if sp == nil {
		return fmt.Errorf("%w: unplanned sub-query", ErrUnsupported)
	}
	st := &subState{correlated: ex.p.Correlated(s)}
	var tm trace.Timer
	if ex.traceOn(subPrefix) {
		tm = ex.tracer.Span(trace.SubOpID(subPrefix), trace.KindSubquery).Start()
	}
	if st.correlated {
		ap := ex.p.Apply(s)
		if ap == nil {
			// The verdict admits only decorrelatable correlated sites; a
			// missing recipe means the statement should not have reached here.
			return fmt.Errorf("%w: correlated sub-query without a decorrelation recipe", ErrUnsupported)
		}
		as, err := ex.buildApply(sp, ap, subPrefix)
		if err != nil {
			return err
		}
		st.apply = as
		tm.Done(int64(as.inner.Len()))
		ex.subs[s] = st
		return nil
	}

	ex.stats.SubqueryExecutions++
	res, err := ex.run(sp, subPrefix)
	if err != nil {
		// The interpreters reach a failing sub-query lazily (and possibly
		// never); defer so they decide whether the query errors.
		return deferToFallback(err)
	}
	n := res.NumRows()
	st.exists = n > 0
	st.scalarVal = nullScalar
	if n > 0 && len(res.Cols) > 0 {
		// Scalar sites read the first row; extra rows are not an error, like
		// the interpreters.
		st.scalarVal = res.Cols[0].At(0)
	}
	st.set = map[string]bool{}
	if len(res.Cols) > 0 {
		col := res.Cols[0]
		var buf []byte
		for i := 0; i < n; i++ {
			sv := col.At(i)
			if sv.isNull() {
				st.setHasNull = true
				continue
			}
			buf = appendScalarKey(buf[:0], sv)
			st.set[string(buf)] = true
		}
	}
	st.setEmpty = len(st.set) == 0 && !st.setHasNull
	tm.Done(int64(n))
	ex.subs[s] = st
	return nil
}

// scalarProjExpr returns the single projected expression of a scalar/IN
// sub-query; the plan verdict guarantees exactly one non-star item.
func scalarProjExpr(stmt *sqlparser.SelectStatement) (sqlparser.Expr, error) {
	for _, p := range stmt.Projection {
		if !p.Star {
			return p.Expr, nil
		}
	}
	return nil, fmt.Errorf("%w: sub-query projects no expression", ErrUnsupported)
}

// buildApply executes the decorrelation recipe: run the sub-query's own FROM
// pipeline with the correlation conjuncts stripped (InnerResidual replaces the
// plan's residual), hash the result by the inner keys, and precompute the
// per-row or per-group projection values the use-site shape consumes.
func (ex *executor) buildApply(sp *plan.Select, ap *plan.Apply, subPrefix string) (*applyState, error) {
	// Sub-queries nested inside the inner statement materialize first; the
	// inner pipeline's filters probe them.
	if err := ex.prepareSubqueries(sp.Stmt, subPrefix); err != nil {
		return nil, err
	}
	ex.stats.SubqueryExecutions++
	inner := *sp
	inner.VexecResidual = ap.InnerResidual
	pipe, err := ex.buildFrom(&inner, subPrefix)
	if err != nil {
		return nil, deferToFallback(err)
	}
	b, err := ex.materializeOp(pipe)
	if err != nil {
		return nil, deferToFallback(err)
	}

	as := &applyState{
		shape:         ap.Shape,
		outerKeys:     ap.OuterKeys,
		pairConjuncts: ap.PairConjuncts,
		inner:         b,
		groups:        map[string]int32{},
	}
	n := b.Len()
	keyVecs, err := ex.keyVectors(b, ap.InnerKeys)
	if err != nil {
		return nil, deferToFallback(err)
	}
	as.lists = newJoinLists(n)
	rowGroup := make([]int32, n)
	var buf []byte
	for i := 0; i < n; i++ {
		rowGroup[i] = -1
		if nullKeyRow(keyVecs, i) {
			// NULL = anything is UNKNOWN: the row can never match an outer key.
			continue
		}
		buf = encodeRowKey(buf[:0], keyVecs, i)
		g, ok := as.groups[string(buf)]
		if !ok {
			g = int32(len(as.groups))
			as.groups[string(buf)] = g
		}
		as.lists.insert(int(g), int32(i), !ok)
		rowGroup[i] = g
	}

	switch ap.Shape {
	case plan.ApplyExists:
		// Candidate presence decides; the projection is never evaluated.
	case plan.ApplyIn, plan.ApplyFirst:
		proj, err := scalarProjExpr(sp.Stmt)
		if err != nil {
			return nil, err
		}
		ctx := &evalCtx{ex: ex, batch: b}
		v, err := ctx.eval(proj)
		if err != nil {
			return nil, deferToFallback(err)
		}
		as.projVals = v
	case plan.ApplyAgg:
		if err := ex.buildApplyAgg(as, sp.Stmt, b, rowGroup); err != nil {
			return nil, err
		}
	}
	return as, nil
}

// buildApplyAgg folds the inner rows into one aggregate group per correlation
// key — the decorrelated image of "run the aggregated sub-query once per outer
// row" — and evaluates the sub-query's projection over the groups, plus once
// over an empty group for outer rows with no match (count 0, NULL sums).
func (ex *executor) buildApplyAgg(as *applyState, stmt *sqlparser.SelectStatement, b *Batch, rowGroup []int32) error {
	proj, err := scalarProjExpr(stmt)
	if err != nil {
		return err
	}
	specs, err := collectAggregates(stmt)
	if err != nil {
		return deferToFallback(err)
	}
	carried := collectCarriedRefs(stmt)
	_, argVecs, refVecs, err := aggBatchVectors(ex, b, stmt, specs, carried)
	if err != nil {
		return deferToFallback(err)
	}
	order := make([]*aggState, len(as.groups))
	n := b.Len()
	ex.stats.AggRows += int64(n)
	for i := 0; i < n; i++ {
		g := rowGroup[i]
		if g < 0 {
			continue
		}
		st := order[g]
		if st == nil {
			st = newAggState(specs, carried)
			order[g] = st
			for ri, rv := range refVecs {
				st.firsts[ri] = rv.At(i)
			}
		}
		st.rows++
		for ai := range specs {
			if specs[ai].call.Star {
				continue
			}
			st.accs[ai].fold(argVecs[ai].At(i), specs[ai].call.Distinct)
		}
	}
	ex.stats.Groups += int64(len(order))
	res, err := buildAggResult(specs, carried, order)
	if err != nil {
		return deferToFallback(err)
	}
	gctx := &evalCtx{ex: ex, batch: &Batch{n: len(order)}, aggs: res.aggs, refs: res.refs}
	if as.groupVals, err = gctx.eval(proj); err != nil {
		return deferToFallback(err)
	}

	empty, err := buildAggResult(specs, carried, []*aggState{newAggState(specs, carried)})
	if err != nil {
		return deferToFallback(err)
	}
	ectx := &evalCtx{ex: ex, batch: &Batch{n: 1}, aggs: empty.aggs, refs: empty.refs}
	ev, err := ectx.eval(proj)
	if err != nil {
		return deferToFallback(err)
	}
	as.emptyVal = ev.At(0)
	return nil
}
