package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/metrics"
	"sqalpel/internal/workload"
)

// smallTPCH is shared by the core tests.
var smallTPCH = datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.0005, Seed: 3})

func newNationProject(t *testing.T) *Project {
	t.Helper()
	p, err := NewProject("nation", workload.NationBaselineQuery, ProjectOptions{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.AddEngineTarget("", engine.NewColEngine(), smallTPCH)
	p.AddEngineTarget("", engine.NewRowEngine(), smallTPCH)
	return p
}

func TestNewProjectFromBaseline(t *testing.T) {
	p := newNationProject(t)
	if p.Pool().Size() != 1 {
		t.Errorf("fresh pool size = %d, want 1 (baseline)", p.Pool().Size())
	}
	if len(p.Targets()) != 2 {
		t.Errorf("targets = %v", p.Targets())
	}
	space, err := p.Space()
	if err != nil {
		t.Fatal(err)
	}
	if space.Templates == 0 || space.Space == 0 {
		t.Errorf("space summary = %+v", space)
	}
	if !strings.Contains(p.GrammarText(), "l_projection") {
		t.Error("grammar text missing derived rules")
	}
	if !strings.Contains(p.Summary(), "nothing measured") {
		t.Errorf("summary = %q", p.Summary())
	}
}

func TestNewProjectFromGrammar(t *testing.T) {
	p, err := NewProjectFromGrammar("figure1", workload.NationSampleGrammar, ProjectOptions{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Baseline == "" {
		t.Error("baseline should be realised from the grammar")
	}
	if _, err := NewProjectFromGrammar("bad", "not a grammar", ProjectOptions{}); err == nil {
		t.Error("invalid grammar should fail")
	}
	if _, err := NewProject("bad", "not sql", ProjectOptions{}); err == nil {
		t.Error("invalid SQL should fail")
	}
}

func TestProjectEndToEnd(t *testing.T) {
	p := newNationProject(t)
	if err := p.SeedPool(6); err != nil {
		t.Fatal(err)
	}
	grown := p.GrowPool(6)
	if grown == 0 {
		t.Error("grow added nothing")
	}
	if err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	runs := p.Runs()
	if len(runs) < 2*p.Pool().Size()-2 {
		t.Errorf("runs = %d for pool of %d and 2 targets", len(runs), p.Pool().Size())
	}
	hist := p.History("columba-1.0")
	if len(hist) == 0 {
		t.Error("empty history")
	}
	comps := p.Components("columba-1.0")
	if len(comps) == 0 {
		t.Error("empty components")
	}
	speed := p.Speedup("columba-1.0", "tuplestore-1.0")
	if len(speed.Points) == 0 {
		t.Error("empty speedup")
	}
	if p.Pool().Size() >= 2 {
		if _, err := p.Diff(1, 2); err != nil {
			t.Errorf("diff failed: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := p.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "query_id") {
		t.Error("CSV export missing header")
	}
	recs := p.QueryRecords()
	if len(recs) != p.Pool().Size() {
		t.Errorf("query records = %d, want %d", len(recs), p.Pool().Size())
	}
	if recs[0].Strategy != "baseline" {
		t.Errorf("first record = %+v", recs[0])
	}
	if !strings.Contains(p.Summary(), "measured") {
		t.Errorf("summary = %q", p.Summary())
	}
	// Discriminative queries exist in at least one direction on TPC-H
	// nation-style scans.
	fa, err := p.Discriminative("columba-1.0", "tuplestore-1.0", 3)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := p.Discriminative("tuplestore-1.0", "columba-1.0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa)+len(fb) == 0 {
		t.Error("no discriminative queries found at all")
	}
}

func TestRunNeedsTwoTargets(t *testing.T) {
	p, err := NewProject("solo", workload.NationBaselineQuery, ProjectOptions{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.AddEngineTarget("", engine.NewColEngine(), smallTPCH)
	if err := p.Run(1); err == nil {
		t.Error("run with a single target should fail")
	}
}

func TestEngineTargetReportsStats(t *testing.T) {
	target := &EngineTarget{Engine: engine.NewColEngine(), DB: smallTPCH, Timeout: 10 * time.Second}
	rows, extra, err := target.Run("SELECT count(*) FROM nation")
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Errorf("rows = %d", rows)
	}
	if extra["rows_scanned"] == "" {
		t.Errorf("extras = %v", extra)
	}
	if _, _, err := target.Run("SELECT broken FROM nowhere"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestMeasureAllAndExplicitPair(t *testing.T) {
	p := newNationProject(t)
	if err := p.SeedPool(3); err != nil {
		t.Fatal(err)
	}
	if err := p.MeasureAll(); err != nil {
		t.Fatal(err)
	}
	if len(p.Runs()) == 0 {
		t.Error("MeasureAll produced no runs")
	}
	if err := p.Run(1, "tuplestore-1.0", "columba-1.0"); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryTargetsAndMatrix registers every built-in engine — the three
// execution paradigms — measures the pool once and reads the pairwise
// discrimination matrix.
func TestRegistryTargetsAndMatrix(t *testing.T) {
	p, err := NewProject("nation", workload.NationBaselineQuery, ProjectOptions{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := p.AddRegistryTargets(smallTPCH)
	if len(keys) < 5 {
		t.Fatalf("registry targets = %v, want at least 5", keys)
	}
	if got := p.Targets(); len(got) != len(keys) {
		t.Fatalf("targets = %v", got)
	}
	families := map[string]bool{}
	for _, k := range keys {
		families[strings.SplitN(k, "-", 2)[0]] = true
	}
	for _, want := range []string{"tuplestore", "columba", "vektor"} {
		if !families[want] {
			t.Errorf("missing paradigm %s in %v", want, keys)
		}
	}
	if err := p.SeedPool(3); err != nil {
		t.Fatal(err)
	}
	if err := p.MeasureAll(); err != nil {
		t.Fatal(err)
	}
	cells, err := p.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(keys) * (len(keys) - 1); len(cells) != want {
		t.Errorf("matrix cells = %d, want %d", len(cells), want)
	}
}

func TestParallelProjectRunMatchesSerial(t *testing.T) {
	// The same project run with 1 and with 8 measurement workers over real
	// engines grows identical pools: the walk is driven by the pool seed and
	// the scheduler only changes wall-clock. (Findings on real engines are
	// timing-dependent, so only the pool trajectory is compared here; the
	// bit-identical findings guarantee is covered with simulated targets in
	// internal/discriminative.)
	poolOf := func(parallelism int) []string {
		p, err := NewProject("nation", workload.NationBaselineQuery, ProjectOptions{
			Runs: 1, Parallelism: parallelism, Timeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.AddEngineTarget("", engine.NewColEngine(), smallTPCH)
		p.AddEngineTarget("", engine.NewRowEngine(), smallTPCH)
		if err := p.SeedPool(6); err != nil {
			t.Fatal(err)
		}
		if err := p.MeasureAll(); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range p.Pool().Entries() {
			out = append(out, e.SQL)
		}
		return out
	}
	serial := poolOf(1)
	parallel := poolOf(8)
	if len(serial) != len(parallel) {
		t.Fatalf("pool sizes diverged: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("pool entry %d diverged:\n serial:   %s\n parallel: %s", i+1, serial[i], parallel[i])
		}
	}
}

// TestQueryParallelismUnderScheduler drives vektor's morsel-parallel
// executor through the measurement scheduler: a project whose total
// concurrency budget is split between measurement workers and intra-query
// morsel workers must grow the same pool and measure the same row counts
// as a fully serial project. Under -race this doubles as the concurrency
// audit of the new hash table and morsel pool inside the sched worker
// fan-out.
func TestQueryParallelismUnderScheduler(t *testing.T) {
	q1, _ := workload.TPCHQuery("Q1")
	rowsOf := func(parallelism, queryParallelism int) map[int]float64 {
		p, err := NewProject("q1", q1.SQL, ProjectOptions{
			Runs:             1,
			Parallelism:      parallelism,
			QueryParallelism: queryParallelism,
			Timeout:          30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.AddEngineTarget("vektor-1.0", engine.NewVektorEngine(), smallTPCH)
		p.AddEngineTarget("columba-1.0", engine.NewColEngine(), smallTPCH)
		if err := p.SeedPool(5); err != nil {
			t.Fatal(err)
		}
		if err := p.MeasureAll(); err != nil {
			t.Fatal(err)
		}
		out := map[int]float64{}
		for _, r := range p.Runs() {
			if r.Target == "vektor-1.0" && r.Error == "" {
				out[r.QueryID]++
			}
		}
		return out
	}
	serial := rowsOf(1, 1)
	shared := rowsOf(8, 4)
	if len(serial) != len(shared) {
		t.Fatalf("measured %d vs %d vektor outcomes", len(serial), len(shared))
	}
	for id := range serial {
		if _, ok := shared[id]; !ok {
			t.Errorf("query %d measured serially but not under the shared budget", id)
		}
	}
}

func TestEngineTargetRunContext(t *testing.T) {
	target := &EngineTarget{Engine: engine.NewColEngine(), DB: smallTPCH, Timeout: 30 * time.Second}
	rows, _, err := target.RunContext(context.Background(), "SELECT count(*) FROM nation")
	if err != nil || rows == 0 {
		t.Fatalf("RunContext = %d rows, err %v", rows, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := target.RunContext(ctx, "SELECT count(*) FROM nation"); err == nil {
		t.Error("cancelled context should refuse to execute")
	}
	var _ metrics.ContextTarget = target
}
