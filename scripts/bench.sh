#!/usr/bin/env bash
# bench.sh — run the root benchmark suite with -benchmem and record the
# results as BENCH_<date>.json in the repo root: one entry per benchmark
# with its name, ns/op, allocs/op and bytes/op, so successive runs can be
# diffed across PRs.
#
# Usage:
#   scripts/bench.sh                       # full suite, default benchtime
#   BENCH_PATTERN=StringEncodings scripts/bench.sh
#   BENCH_TIME=1x scripts/bench.sh         # one iteration per benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

pattern=${BENCH_PATTERN:-.}
benchtime=${BENCH_TIME:-300ms}
out="BENCH_$(date +%F).json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$raw"

awk -v date="$(date +%F)" -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", date, benchtime
    sep = ""
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = "null"; bytes = "null"; allocs = "null"
    for (i = 3; i < NF; i += 2) {
        if ($(i + 1) == "ns/op") ns = $i
        else if ($(i + 1) == "B/op") bytes = $i
        else if ($(i + 1) == "allocs/op") allocs = $i
    }
    printf "%s\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s}", sep, name, ns, allocs, bytes
    sep = ","
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

echo "wrote $out"
