package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sqalpel/internal/metrics"
	"sqalpel/internal/server"
	"sqalpel/internal/workload"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(`
# sqalpel driver configuration
server = http://localhost:8080
key = abc123
dbms = columba-1.0
platform = laptop
experiment = 1
runs = 3
timeout_seconds = 30
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Server != "http://localhost:8080" || cfg.Key != "abc123" || cfg.DBMS != "columba-1.0" {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.Runs != 3 || cfg.Timeout != 30*time.Second || cfg.Experiment != 1 {
		t.Errorf("config = %+v", cfg)
	}
	// host is an alias for platform.
	cfg2, err := ParseConfig("server=s\nkey=k\ndbms=d\nhost=h\nexperiment=2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Platform != "h" || cfg2.Runs != metrics.DefaultRuns {
		t.Errorf("config = %+v", cfg2)
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		"nonsense line",
		"unknown = value\nserver=s\nkey=k\ndbms=d\nplatform=p\nexperiment=1",
		"server=s\nkey=k\ndbms=d\nplatform=p\nexperiment=zero",
		"server=s\nkey=k\ndbms=d\nplatform=p\nexperiment=1\nruns=-1",
		"server=s\nkey=k\ndbms=d\nplatform=p\nexperiment=1\ntimeout_seconds=x",
		"key=k\ndbms=d\nplatform=p\nexperiment=1",    // missing server
		"server=s\ndbms=d\nplatform=p\nexperiment=1", // missing key
		"server=s\nkey=k\nplatform=p\nexperiment=1",  // missing dbms
		"server=s\nkey=k\ndbms=d\nexperiment=1",      // missing platform
		"server=s\nkey=k\ndbms=d\nplatform=p",        // missing experiment
	}
	for _, src := range bad {
		if _, err := ParseConfig(src); err == nil {
			t.Errorf("config %q should be rejected", src)
		}
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sqalpel.conf")
	content := "server=http://x\nkey=k\ndbms=d\nplatform=p\nexperiment=3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Experiment != 3 {
		t.Errorf("config = %+v", cfg)
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.conf")); err == nil {
		t.Error("missing file should fail")
	}
}

// setupPlatform spins up a real platform server with one project, one
// experiment and the owner's contributor key.
func setupPlatform(t *testing.T) (baseURL, key string, experiment int) {
	t.Helper()
	s := server.New(server.Options{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	post := func(path, token string, body map[string]any) map[string]any {
		payload, _ := json.Marshal(body)
		req, _ := http.NewRequest("POST", ts.URL+path, bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("X-Sqalpel-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out := map[string]any{}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode >= 400 {
			t.Fatalf("POST %s failed: %d %v", path, resp.StatusCode, out)
		}
		return out
	}

	reg := post("/api/register", "", map[string]any{"nickname": "driver-owner", "email": "d@example.org"})
	token := reg["token"].(string)
	proj := post("/api/projects", token, map[string]any{"name": "driver-project", "public": true})
	pid := int(proj["project"].(map[string]any)["id"].(float64))
	key = proj["key"].(string)
	exp := post(fmt.Sprintf("/api/projects/%d/experiments", pid), token, map[string]any{
		"title": "nation", "baseline_sql": workload.NationBaselineQuery, "seed_random": 3,
	})
	return ts.URL, key, int(exp["experiment_id"].(float64))
}

func TestClientEndToEnd(t *testing.T) {
	url, key, eid := setupPlatform(t)
	cfg := Config{Server: url, Key: key, DBMS: "columba-1.0", Platform: "laptop", Experiment: eid, Runs: 2, Timeout: 5 * time.Second}
	client, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if client.Config().Runs != 2 {
		t.Error("config accessor wrong")
	}

	// A fake local DBMS target: fails on queries mentioning n_comment.
	target := metrics.TargetFunc(func(query string) (int, map[string]string, error) {
		if strings.Contains(query, "n_comment") {
			return 0, nil, fmt.Errorf("simulated syntax error")
		}
		return 3, map[string]string{"engine": "fake"}, nil
	})

	n, err := client.RunAll(target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 {
		t.Fatalf("processed %d tasks, want the whole pool", n)
	}
	// The pool is exhausted now.
	more, err := client.RunOnce(target)
	if err != nil {
		t.Fatal(err)
	}
	if more {
		t.Error("pool should be exhausted")
	}
	// The platform stored results, including the failed ones.
	resp, err := http.Get(url + fmt.Sprintf("/api/projects/%d/results", 1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var results []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Errorf("platform has %d results, driver processed %d", len(results), n)
	}
	sawError, sawExtra := false, false
	for _, r := range results {
		if msg, ok := r["error"].(string); ok && msg != "" {
			sawError = true
		}
		if extra, ok := r["extra"].(map[string]any); ok {
			if _, ok := extra["before_load_avg_1"]; ok {
				sawExtra = true
			}
		}
	}
	if !sawError {
		t.Error("expected at least one error result (n_comment queries)")
	}
	if !sawExtra {
		t.Error("expected load averages in the extras")
	}
}

func TestClientBadKey(t *testing.T) {
	url, _, eid := setupPlatform(t)
	client, err := NewClient(Config{Server: url, Key: "wrong", DBMS: "d", Platform: "p", Experiment: eid, Runs: 1, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestTask(); err == nil {
		t.Error("request with a bad key should fail")
	}
}

func TestClientMaxTasks(t *testing.T) {
	url, key, eid := setupPlatform(t)
	client, _ := NewClient(Config{Server: url, Key: key, DBMS: "x-1", Platform: "p", Experiment: eid, Runs: 1, Timeout: time.Second})
	target := metrics.TargetFunc(func(query string) (int, map[string]string, error) { return 1, nil, nil })
	n, err := client.RunAll(target, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("maxTasks not honoured: %d", n)
	}
}

func TestNewClientValidates(t *testing.T) {
	if _, err := NewClient(Config{}); err == nil {
		t.Error("empty config should be rejected")
	}
}

// countingTarget counts executions per query under a lock so concurrent
// workers can share it.
type countingTarget struct {
	mu    sync.Mutex
	calls map[string]int
}

func (c *countingTarget) Run(query string) (int, map[string]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.calls == nil {
		c.calls = map[string]int{}
	}
	c.calls[query]++
	return 1, nil, nil
}

// fetchResults pulls the project's result rows from the platform.
func fetchResults(t *testing.T, url string) []map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/api/projects/1/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var results []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		t.Fatal(err)
	}
	return results
}

func TestBatchClaimingWorkerPool(t *testing.T) {
	url, key, eid := setupPlatform(t)
	cfg := Config{
		Server: url, Key: key, DBMS: "columba-1.0", Platform: "laptop",
		Experiment: eid, Runs: 2, Timeout: 5 * time.Second, Workers: 4, Batch: 3,
	}
	client, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := &countingTarget{}
	n, err := client.RunAll(target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 {
		t.Fatalf("processed %d tasks, want the whole pool", n)
	}
	// Every query executed exactly Runs times: the worker pool neither
	// skipped nor double-measured anything.
	target.mu.Lock()
	for query, calls := range target.calls {
		if calls != cfg.Runs {
			t.Errorf("query %q executed %d times, want %d", query, calls, cfg.Runs)
		}
	}
	target.mu.Unlock()
	results := fetchResults(t, url)
	if len(results) != n {
		t.Errorf("platform has %d results, driver processed %d", len(results), n)
	}
	seen := map[float64]bool{}
	for _, r := range results {
		qid := r["query_id"].(float64)
		if seen[qid] {
			t.Errorf("query %v measured twice", qid)
		}
		seen[qid] = true
	}
}

func TestConcurrentDriversShareOneExperiment(t *testing.T) {
	url, key, eid := setupPlatform(t)
	// Two drivers with their own worker pools drain the same experiment for
	// the same DBMS + platform slot — the crowd-sourcing scenario. The
	// per-lease deadlines on the server guarantee no double measurements.
	var wg sync.WaitGroup
	totals := make([]int, 2)
	for i := range totals {
		cfg := Config{
			Server: url, Key: key, DBMS: "columba-1.0", Platform: "laptop",
			Experiment: eid, Runs: 1, Timeout: 5 * time.Second, Workers: 3, Batch: 2,
		}
		client, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			n, err := client.RunAll(&countingTarget{}, 0)
			if err != nil {
				t.Error(err)
			}
			totals[slot] = n
		}(i)
	}
	wg.Wait()

	results := fetchResults(t, url)
	if got := totals[0] + totals[1]; got != len(results) {
		t.Errorf("drivers processed %d tasks, platform has %d results", got, len(results))
	}
	seen := map[float64]bool{}
	for _, r := range results {
		qid := r["query_id"].(float64)
		if seen[qid] {
			t.Errorf("query %v measured by more than one driver", qid)
		}
		seen[qid] = true
	}
	if len(seen) < 4 {
		t.Errorf("only %d distinct queries measured, want the whole pool", len(seen))
	}
}

func TestParseConfigWorkersAndBatch(t *testing.T) {
	cfg, err := ParseConfig("server = s\nkey = k\ndbms = d\nplatform = p\nexperiment = 1\nworkers = 4\nbatch = 8\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 4 || cfg.Batch != 8 {
		t.Errorf("config = %+v", cfg)
	}
	if _, err := ParseConfig("server = s\nkey = k\ndbms = d\nplatform = p\nexperiment = 1\nworkers = 0\n"); err == nil {
		t.Error("workers = 0 should be rejected")
	}
	if _, err := ParseConfig("server = s\nkey = k\ndbms = d\nplatform = p\nexperiment = 1\nbatch = -1\n"); err == nil {
		t.Error("negative batch should be rejected")
	}
}
