package repository

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixture builds a store with two users, a public and a private project and
// one experiment with two queries.
func fixture(t *testing.T) (*Store, *Project, *Project) {
	t.Helper()
	s := NewStore()
	if _, err := s.RegisterUser("martin", "martin@example.org"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterUser("ying", "ying@example.org"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterUser("visitor", "v@example.org"); err != nil {
		t.Fatal(err)
	}
	pub, err := s.CreateProject("martin", "tpch-public", "TPC-H inspired project", true)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := s.CreateProject("martin", "secret-appliance", "private vendor tests", false)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := s.AddExperiment("martin", pub.ID, "Q1 space", "SELECT count(*) FROM nation", "query:\n\tSELECT ...")
	if err != nil {
		t.Fatal(err)
	}
	err = s.ReplaceQueries("martin", pub.ID, exp.ID, []QueryRecord{
		{ID: 1, SQL: "SELECT count(*) FROM nation", Strategy: "baseline", Components: 2},
		{ID: 2, SQL: "SELECT n_name FROM nation", Strategy: "random", Components: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, pub, priv
}

func TestUserRegistration(t *testing.T) {
	s := NewStore()
	u, err := s.RegisterUser("alice", "alice@example.org")
	if err != nil {
		t.Fatal(err)
	}
	if u.Nickname != "alice" {
		t.Errorf("nickname = %q", u.Nickname)
	}
	if _, err := s.RegisterUser("alice", "other@example.org"); err == nil {
		t.Error("duplicate nickname should fail")
	}
	for _, bad := range []string{"", "no-at-sign", "@example.org", "x@", "spaces in@mail.org"} {
		if _, err := s.RegisterUser("u"+bad, bad); err == nil {
			t.Errorf("email %q should be rejected", bad)
		}
	}
	if s.User("alice") == nil || s.User("nobody") != nil {
		t.Error("User lookup wrong")
	}
	if len(s.Users()) != 1 {
		t.Errorf("Users() = %d entries", len(s.Users()))
	}
}

func TestProjectCreationAndVisibility(t *testing.T) {
	s, pub, priv := fixture(t)
	if _, err := s.CreateProject("ghost", "x", "", true); err == nil {
		t.Error("unknown owner should fail")
	}
	if _, err := s.CreateProject("martin", "tpch-public", "", true); err == nil {
		t.Error("duplicate project name should fail")
	}
	if _, err := s.CreateProject("martin", "  ", "", true); err == nil {
		t.Error("empty name should fail")
	}

	// Roles.
	if s.RoleOf("martin", pub.ID) != RoleOwner {
		t.Error("owner role wrong")
	}
	if s.RoleOf("visitor", pub.ID) != RoleReader {
		t.Error("public projects are readable by everyone")
	}
	if s.RoleOf("visitor", priv.ID) != RoleNone {
		t.Error("private projects are invisible to outsiders")
	}
	if s.RoleOf("", pub.ID) != RoleReader || s.RoleOf("", priv.ID) != RoleNone {
		t.Error("anonymous role wrong")
	}

	// Visible project listings.
	if got := len(s.Projects("visitor")); got != 1 {
		t.Errorf("visitor sees %d projects, want 1", got)
	}
	if got := len(s.Projects("martin")); got != 2 {
		t.Errorf("owner sees %d projects, want 2", got)
	}

	// Visibility switch.
	if err := s.SetVisibility("visitor", priv.ID, true); err == nil {
		t.Error("non-owner cannot change visibility")
	}
	if err := s.SetVisibility("martin", priv.ID, true); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Projects("visitor")); got != 2 {
		t.Errorf("after publishing, visitor sees %d projects", got)
	}
	if s.ProjectByName("tpch-public") == nil || s.ProjectByName("nope") != nil {
		t.Error("ProjectByName wrong")
	}
}

func TestInvitationsAndContributorKeys(t *testing.T) {
	s, pub, priv := fixture(t)
	key, err := s.Invite("martin", priv.ID, "ying")
	if err != nil {
		t.Fatal(err)
	}
	if key == "" {
		t.Fatal("empty contributor key")
	}
	// Repeated invitations return the same key.
	again, _ := s.Invite("martin", priv.ID, "ying")
	if again != key {
		t.Error("re-invitation should keep the key")
	}
	if _, err := s.Invite("ying", priv.ID, "visitor"); err == nil {
		t.Error("only the owner can invite")
	}
	if _, err := s.Invite("martin", priv.ID, "ghost"); err == nil {
		t.Error("cannot invite unregistered users")
	}
	// The contributor can now view and contribute to the private project.
	if !s.CanView("ying", priv.ID) || !s.CanContribute("ying", priv.ID) {
		t.Error("contributor permissions wrong")
	}
	if s.CanContribute("visitor", pub.ID) {
		t.Error("readers cannot contribute")
	}
	// Key resolution.
	p, nick, err := s.FindContributor(key)
	if err != nil || p.ID != priv.ID || nick != "ying" {
		t.Errorf("FindContributor = %v %q %v", p, nick, err)
	}
	if _, _, err := s.FindContributor("bogus"); err == nil {
		t.Error("unknown keys must not resolve")
	}
}

func TestExperimentAndQueryPoolManagement(t *testing.T) {
	s, pub, _ := fixture(t)
	if _, err := s.AddExperiment("visitor", pub.ID, "x", "SELECT 1", ""); err == nil {
		t.Error("only the owner can add experiments")
	}
	exp := s.Project(pub.ID).Experiment(1)
	if exp == nil || len(exp.Queries) != 2 {
		t.Fatalf("fixture experiment wrong: %+v", exp)
	}
	if exp.Query(1) == nil || exp.Query(99) != nil {
		t.Error("Query lookup wrong")
	}
	if err := s.AppendQueries("martin", pub.ID, 1, []QueryRecord{{ID: 3, SQL: "SELECT n_comment FROM nation", Strategy: "alter", ParentID: 2}}); err != nil {
		t.Fatal(err)
	}
	if len(s.Project(pub.ID).Experiment(1).Queries) != 3 {
		t.Error("append did not extend the pool")
	}
	if err := s.AppendQueries("ying", pub.ID, 1, nil); err == nil {
		t.Error("non-owner cannot manage the pool")
	}
	if err := s.ReplaceQueries("martin", pub.ID, 42, nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestResultsAndModeration(t *testing.T) {
	s, pub, _ := fixture(t)
	ownerKey := s.Project(pub.ID).Contributors[0].Key

	r, err := s.AddResult(ownerKey, 1, 1, "columba-1.0", "laptop", []float64{0.12, 0.11, 0.13}, "", map[string]string{"load_avg_1": "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if r.MinSeconds() != 0.11 {
		t.Errorf("min seconds = %f", r.MinSeconds())
	}
	if r.Failed() {
		t.Error("result should not be failed")
	}
	if _, err := s.AddResult(ownerKey, 1, 99, "columba-1.0", "laptop", nil, "", nil); err == nil {
		t.Error("unknown query should fail")
	}
	if _, err := s.AddResult("bogus", 1, 1, "columba-1.0", "laptop", nil, "", nil); err == nil {
		t.Error("unknown key should fail")
	}
	// An error result.
	if _, err := s.AddResult(ownerKey, 1, 2, "tuplestore-1.0", "laptop", nil, "syntax error", nil); err != nil {
		t.Fatal(err)
	}

	if got := len(s.Results("visitor", pub.ID)); got != 2 {
		t.Errorf("visible results = %d, want 2", got)
	}
	// Moderation: hide one result; readers no longer see it, the owner does.
	if err := s.HideResult("visitor", r.ID, true); err == nil {
		t.Error("non-owner cannot hide results")
	}
	if err := s.HideResult("martin", r.ID, true); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Results("visitor", pub.ID)); got != 1 {
		t.Errorf("reader sees %d results after hiding, want 1", got)
	}
	if got := len(s.Results("martin", pub.ID)); got != 2 {
		t.Errorf("owner sees %d results, want 2", got)
	}
	// Deleting removes entirely.
	if err := s.DeleteResult("martin", r.ID); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Results("martin", pub.ID)); got != 1 {
		t.Errorf("after delete, owner sees %d results", got)
	}
	if err := s.DeleteResult("martin", 999); err == nil {
		t.Error("deleting an unknown result should fail")
	}
	// Results of invisible projects are not returned.
	if s.Results("visitor", 999) != nil {
		t.Error("unknown project should have no results")
	}
}

func TestComments(t *testing.T) {
	s, pub, priv := fixture(t)
	c, err := s.AddComment("visitor", pub.ID, "please document the indices used")
	if err != nil {
		t.Fatal(err)
	}
	if c.Author != "visitor" {
		t.Errorf("author = %q", c.Author)
	}
	if _, err := s.AddComment("visitor", priv.ID, "sneaky"); err == nil {
		t.Error("cannot comment on invisible projects")
	}
	if _, err := s.AddComment("ghost", pub.ID, "hello"); err == nil {
		t.Error("unregistered users cannot comment")
	}
	if _, err := s.AddComment("visitor", pub.ID, "   "); err == nil {
		t.Error("empty comments rejected")
	}
	if got := len(s.Comments("visitor", pub.ID)); got != 1 {
		t.Errorf("comments = %d", got)
	}
	if s.Comments("visitor", priv.ID) != nil {
		t.Error("comments of private projects are hidden")
	}
}

func TestTaskQueue(t *testing.T) {
	s, pub, _ := fixture(t)
	key := s.Project(pub.ID).Contributors[0].Key

	task, err := s.RequestTask(key, 1, "columba-1.0", "laptop")
	if err != nil {
		t.Fatal(err)
	}
	if task == nil || task.QueryID != 1 || task.Status != TaskRunning {
		t.Fatalf("task = %+v", task)
	}
	// A second request hands out the next query, not the same one.
	task2, err := s.RequestTask(key, 1, "columba-1.0", "laptop")
	if err != nil {
		t.Fatal(err)
	}
	if task2 == nil || task2.QueryID == task.QueryID {
		t.Fatalf("second task = %+v", task2)
	}
	// A different DBMS starts over from query 1.
	taskOther, err := s.RequestTask(key, 1, "tuplestore-1.0", "laptop")
	if err != nil {
		t.Fatal(err)
	}
	if taskOther == nil || taskOther.QueryID != 1 {
		t.Fatalf("other-dbms task = %+v", taskOther)
	}
	// Completing task 1 records a result.
	res, err := s.CompleteTask(task.ID, key, []float64{0.5, 0.4}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryID != task.QueryID || res.DBMSKey != "columba-1.0" {
		t.Errorf("result = %+v", res)
	}
	// Completing twice fails; completing with the wrong key fails.
	if _, err := s.CompleteTask(task.ID, key, nil, "", nil); err == nil {
		t.Error("double completion should fail")
	}
	if _, err := s.CompleteTask(task2.ID, "wrong", nil, "", nil); err == nil {
		t.Error("wrong key should fail")
	}
	// When everything is handed out, no more tasks for that combination.
	if task3, _ := s.RequestTask(key, 1, "columba-1.0", "laptop"); task3 != nil {
		t.Errorf("expected no further tasks, got %+v", task3)
	}
	// Unknown experiment.
	if _, err := s.RequestTask(key, 9, "columba-1.0", "laptop"); err == nil {
		t.Error("unknown experiment should fail")
	}
	// Queue listing visible to readers.
	if got := len(s.Tasks("visitor", pub.ID)); got != 3 {
		t.Errorf("task listing = %d, want 3", got)
	}
}

func TestTaskTimeoutAndKill(t *testing.T) {
	s, pub, _ := fixture(t)
	key := s.Project(pub.ID).Contributors[0].Key
	s.TaskTimeout = time.Minute

	// Control the clock.
	current := time.Date(2026, 6, 16, 12, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return current }

	task, err := s.RequestTask(key, 1, "columba-1.0", "laptop")
	if err != nil || task == nil {
		t.Fatal(err)
	}
	// Before the deadline the same query is not handed out again; the next
	// request gets the other pool query instead.
	t2, _ := s.RequestTask(key, 1, "columba-1.0", "laptop")
	if t2 != nil && t2.QueryID == task.QueryID {
		t.Error("query handed out twice while the task was active")
	}
	// After the deadline, both running tasks expire and their queries become
	// available again.
	current = current.Add(2 * time.Minute)
	if n := s.ExpireTasks(); n != 2 {
		t.Errorf("expired = %d, want 2", n)
	}
	if s.Tasks("martin", pub.ID)[0].Status != TaskTimeout {
		t.Error("task should be marked timeout")
	}
	t3, err := s.RequestTask(key, 1, "columba-1.0", "laptop")
	if err != nil || t3 == nil || t3.QueryID != task.QueryID {
		t.Errorf("expired query should be reassigned, got %+v", t3)
	}
	// Completing an expired task is rejected.
	if _, err := s.CompleteTask(task.ID, key, nil, "", nil); err == nil {
		t.Error("completing a timed out task should fail")
	}

	// Killing.
	if err := s.KillTask("visitor", t3.ID); err == nil {
		t.Error("only the owner can kill tasks")
	}
	if err := s.KillTask("martin", t3.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.KillTask("martin", t3.ID); err == nil {
		t.Error("killing twice should fail")
	}
	if err := s.KillTask("martin", 999); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestPersistence(t *testing.T) {
	s, pub, _ := fixture(t)
	key := s.Project(pub.ID).Contributors[0].Key
	if _, err := s.AddResult(key, 1, 1, "columba-1.0", "laptop", []float64{0.2}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddComment("visitor", pub.ID, "nice project"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RequestTask(key, 1, "columba-1.0", "laptop"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Users()) != len(s.Users()) {
		t.Error("users lost")
	}
	if loaded.Project(pub.ID) == nil || loaded.Project(pub.ID).Name != "tpch-public" {
		t.Error("projects lost")
	}
	if len(loaded.Results("martin", pub.ID)) != 1 {
		t.Error("results lost")
	}
	if len(loaded.Comments("visitor", pub.ID)) != 1 {
		t.Error("comments lost")
	}
	if len(loaded.Tasks("martin", pub.ID)) != 1 {
		t.Error("tasks lost")
	}
	// New ids continue after the loaded ones.
	p2, err := loaded.CreateProject("martin", "another", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID <= pub.ID {
		t.Errorf("id sequence restarted: %d", p2.ID)
	}
	// Loading from an empty directory yields an empty store.
	empty, err := Load(t.TempDir())
	if err != nil || len(empty.Users()) != 0 {
		t.Error("empty load wrong")
	}
}

func TestEmailsNeverExposedInProjectListings(t *testing.T) {
	// A regression guard: the JSON snapshot keeps emails (needed to reach
	// users) but project structures never embed them.
	s, pub, _ := fixture(t)
	for _, p := range s.Projects("visitor") {
		for _, c := range p.Contributors {
			if strings.Contains(c.Nickname, "@") {
				t.Error("contributor entries must use nicknames, not emails")
			}
		}
	}
	_ = pub
}

func TestRequestTasksBatch(t *testing.T) {
	s, pub, _ := fixture(t)
	key := s.Project(pub.ID).Contributors[0].Key

	tasks, err := s.RequestTasks(key, 1, "columba-1.0", "laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture experiment has two queries; both come back in one batch,
	// each with its own lease deadline.
	if len(tasks) != 2 {
		t.Fatalf("leased %d tasks, want 2", len(tasks))
	}
	if tasks[0].QueryID == tasks[1].QueryID {
		t.Error("one batch leased the same query twice")
	}
	for _, task := range tasks {
		if task.Status != TaskRunning {
			t.Errorf("leased task status = %s", task.Status)
		}
		if !task.Deadline.After(task.Assigned) {
			t.Errorf("lease deadline %v not after assignment %v", task.Deadline, task.Assigned)
		}
	}
	// The queue is drained: further requests lease nothing.
	more, err := s.RequestTasks(key, 1, "columba-1.0", "laptop", 5)
	if err != nil || len(more) != 0 {
		t.Errorf("drained queue leased %d tasks (err %v)", len(more), err)
	}
	// A different DBMS slot is independent.
	other, err := s.RequestTasks(key, 1, "tuplestore-1.0", "laptop", 1)
	if err != nil || len(other) != 1 {
		t.Fatalf("other-dbms lease = %d tasks (err %v)", len(other), err)
	}
}

func TestBatchLeaseExpiryRequeue(t *testing.T) {
	s, pub, _ := fixture(t)
	key := s.Project(pub.ID).Contributors[0].Key
	s.TaskTimeout = time.Minute
	current := time.Date(2026, 7, 27, 9, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return current }

	first, err := s.RequestTasks(key, 1, "columba-1.0", "laptop", 2)
	if err != nil || len(first) != 2 {
		t.Fatalf("lease = %d (err %v)", len(first), err)
	}
	// The driver crashes: the leases expire and the next request — which
	// expires stale leases itself, no daemon needed — gets the same queries.
	current = current.Add(2 * time.Minute)
	second, err := s.RequestTasks(key, 1, "columba-1.0", "laptop", 2)
	if err != nil || len(second) != 2 {
		t.Fatalf("post-expiry lease = %d (err %v)", len(second), err)
	}
	want := map[int]bool{first[0].QueryID: true, first[1].QueryID: true}
	for _, task := range second {
		if !want[task.QueryID] {
			t.Errorf("unexpected query %d re-leased", task.QueryID)
		}
	}
	// The late driver coming back cannot deliver into the expired lease, so
	// the re-leased measurement stays the only one — no duplicates.
	if _, err := s.CompleteTask(first[0].ID, key, []float64{0.1}, "", nil); err == nil {
		t.Error("completing an expired lease should be rejected")
	}
	if _, err := s.CompleteTask(second[0].ID, key, []float64{0.1}, "", nil); err != nil {
		t.Errorf("completing the live lease failed: %v", err)
	}
	results := s.Results("martin", pub.ID)
	if len(results) != 1 {
		t.Errorf("results = %d, want exactly 1 (no duplicate measurements)", len(results))
	}
}

func TestConcurrentBatchLeasingNeverDuplicates(t *testing.T) {
	s, pub, _ := fixture(t)
	key := s.Project(pub.ID).Contributors[0].Key
	exp := s.Project(pub.ID).Experiments[0]
	var queries []QueryRecord
	for i := 1; i <= 40; i++ {
		queries = append(queries, QueryRecord{ID: i, SQL: fmt.Sprintf("SELECT %d FROM nation", i), Strategy: "random"})
	}
	if err := s.ReplaceQueries("martin", pub.ID, exp.ID, queries); err != nil {
		t.Fatal(err)
	}

	// Eight drivers hammer the queue concurrently with batch leases.
	var wg sync.WaitGroup
	var mu sync.Mutex
	claimed := map[int]int{}
	for d := 0; d < 8; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tasks, err := s.RequestTasks(key, exp.ID, "columba-1.0", "laptop", 3)
				if err != nil {
					t.Error(err)
					return
				}
				if len(tasks) == 0 {
					return
				}
				mu.Lock()
				for _, task := range tasks {
					claimed[task.QueryID]++
				}
				mu.Unlock()
				for _, task := range tasks {
					if _, err := s.CompleteTask(task.ID, key, []float64{0.01}, "", nil); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if len(claimed) != len(queries) {
		t.Errorf("claimed %d distinct queries, want %d", len(claimed), len(queries))
	}
	for q, n := range claimed {
		if n != 1 {
			t.Errorf("query %d leased %d times", q, n)
		}
	}
	if got := len(s.Results("martin", pub.ID)); got != len(queries) {
		t.Errorf("results = %d, want %d", got, len(queries))
	}
}

func TestLateCompletionExpiresLazily(t *testing.T) {
	// Expiry must be evaluated on completion too: with a single stalled
	// driver and no competing RequestTasks call to trigger it, a stale
	// result must still be rejected.
	s, pub, _ := fixture(t)
	key := s.Project(pub.ID).Contributors[0].Key
	s.TaskTimeout = time.Minute
	current := time.Date(2026, 7, 27, 9, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return current }

	task, err := s.RequestTask(key, 1, "columba-1.0", "laptop")
	if err != nil || task == nil {
		t.Fatal(err)
	}
	current = current.Add(time.Hour)
	_, err = s.CompleteTask(task.ID, key, []float64{0.1}, "", nil)
	if !errors.Is(err, ErrLeaseLost) {
		t.Errorf("late completion error = %v, want ErrLeaseLost", err)
	}
	if got := len(s.Results("martin", pub.ID)); got != 0 {
		t.Errorf("stale result recorded: %d", got)
	}
}
