// Command sqalpel-vet runs the project's static-analysis suite
// (internal/lint): mapiterdet, lockmarshal, sqlsemroute, tracenilalloc and
// walack — the mechanically enforced invariants of determinism, lock
// discipline, NULL semantics, the zero-alloc trace seam and WAL
// durability. See ARCHITECTURE.md, "Enforced invariants".
//
// Two modes:
//
//	sqalpel-vet [./...]                 standalone: load packages via the
//	                                    go tool, analyze, report; exit 2
//	                                    if any diagnostic fired
//	go vet -vettool=$(pwd)/bin/sqalpel-vet ./...
//	                                    unitchecker: cmd/go drives the
//	                                    tool one package at a time through
//	                                    vet.cfg files, sharing its build
//	                                    cache and import maps
//
// Individual analyzers can be selected with -<name> flags; by default the
// whole suite runs. Diagnostics in _test.go files are suppressed unless
// -tests is set: the invariants guard production semantics, and test
// helpers range over maps freely.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"sqalpel/internal/lint"
	"sqalpel/internal/lint/analysis"
	"sqalpel/internal/lint/loader"
)

const progname = "sqalpel-vet"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go tool-ID handshake)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go handshake)")
	jsonFlag := fs.Bool("json", false, "accepted for cmd/go compatibility (output is always plain text)")
	testsFlag := fs.Bool("tests", false, "also report diagnostics in _test.go files")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	_ = jsonFlag

	switch {
	case *versionFlag != "":
		printVersion()
		return 0
	case *flagsFlag:
		printFlags()
		return 0
	}

	analyzers := selected(enabled)
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], analyzers, *testsFlag)
	}
	return standalone(rest, analyzers, *testsFlag)
}

// selected returns the analyzers picked by -<name> flags, or the full
// suite when none was picked.
func selected(enabled map[string]*bool) []*analysis.Analyzer {
	var picked []*analysis.Analyzer
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			picked = append(picked, a)
		}
	}
	if len(picked) == 0 {
		return lint.Analyzers()
	}
	return picked
}

// printVersion implements the -V=full tool-ID handshake: cmd/go requires
// "<name> version <non-devel-version> ..." and uses the whole line as a
// cache key, so the self-hash makes rebuilt tools invalidate stale vet
// results.
func printVersion() {
	h := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			hash := sha256.New()
			if _, err := io.Copy(hash, f); err == nil {
				h = fmt.Sprintf("%x", hash.Sum(nil)[:16])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version 1.0.0 sha256:%s\n", progname, h)
}

// printFlags implements the -flags handshake: cmd/go mirrors these into
// `go vet`'s own flag set.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []jsonFlag{{Name: "tests", Bool: true, Usage: "also report diagnostics in _test.go files"}}
	for _, a := range lint.Analyzers() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, _ := json.MarshalIndent(out, "", "\t")
	fmt.Println(string(data))
}

// diagnostic is one rendered finding.
type diagnostic struct {
	pos      token.Position
	analyzer string
	message  string
}

// runAnalyzers applies the analyzers to one type-checked package and
// returns the findings, filtered to non-test files unless tests is set.
func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, tests bool) ([]diagnostic, error) {
	var diags []diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if !tests && strings.HasSuffix(pos.Filename, "_test.go") {
					return
				}
				diags = append(diags, diagnostic{pos: pos, analyzer: a.Name, message: d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return diags, nil
}

func printDiags(diags []diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.analyzer < b.analyzer
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.pos, d.analyzer, d.message)
	}
}

// standalone loads the named package patterns (default ./...) from the
// current module and analyzes them all in one process.
func standalone(patterns []string, analyzers []*analysis.Analyzer, tests bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	var all []diagnostic
	failed := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", progname, pkg.Path, e)
			failed = true
		}
		if len(pkg.Errors) > 0 {
			continue
		}
		diags, err := runAnalyzers(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, tests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", progname, pkg.Path, err)
			failed = true
			continue
		}
		all = append(all, diags...)
	}
	printDiags(all)
	switch {
	case failed:
		return 1
	case len(all) > 0:
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for each
// package when driving a vet tool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by a cmd/go vet.cfg
// file: parse its GoFiles, type-check against the export data cmd/go
// already built for its dependencies, run the suite, and write the
// (empty — this suite exports no facts) vetx output cmd/go expects.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer, tests bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing %s: %v\n", progname, cfgFile, err)
		return 1
	}

	// cmd/go treats a missing output file as a tool failure even when
	// there is nothing to say, so write it unconditionally and first.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports through the maps cmd/go handed us: source import
	// path -> canonical package path -> export-data file.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, build()),
		Error:    func(error) {}, // collect nothing; the compiler reports type errors
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: typechecking %s: %v\n", progname, cfg.ImportPath, err)
		return 1
	}

	diags, err := runAnalyzers(analyzers, fset, files, pkg, info, tests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %s: %v\n", progname, cfg.ImportPath, err)
		return 1
	}
	printDiags(diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// build returns the architecture for types.SizesFor: GOARCH if set (cmd/go
// sets the build environment), else the arch this tool was built for.
func build() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}
