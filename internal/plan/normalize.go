package plan

import "strings"

// Normalize canonicalises a SQL text for use as a cache key: whitespace runs
// outside single-quoted string literals collapse to a single space, and
// leading/trailing whitespace and a trailing semicolon are dropped. Letter
// case and everything inside quotes are preserved — string literals are
// case- and space-significant, so touching them would conflate semantically
// different queries. The measurement scheduler's result cache and the plan
// cache share this one definition, so a morph whose SQL text collapses onto
// an already planned variant shares both the plan and the measurement.
func Normalize(sql string) string {
	var sb strings.Builder
	sb.Grow(len(sql))
	space := false
	inString := false
	for _, r := range sql {
		if r == '\'' {
			inString = !inString
		}
		if !inString && (r == ' ' || r == '\t' || r == '\n' || r == '\r') {
			space = true
			continue
		}
		if space && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		space = false
		sb.WriteRune(r)
	}
	out := sb.String()
	if !inString {
		out = strings.TrimSuffix(out, ";")
	}
	return strings.TrimSpace(out)
}
