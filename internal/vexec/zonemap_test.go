package vexec

import (
	"fmt"
	"testing"
)

// TestZoneMapBlockSkipping pins the block-skipping contract on an integer
// column: a selective pushed-down range over sequential data must skip every
// block outside the range, count the skips in Stats, and leave the answer
// untouched — serially and under morsel parallelism, with identical stats.
func TestZoneMapBlockSkipping(t *testing.T) {
	cat := seqCatalog(4096) // x = 0..4095: four 1024-row blocks
	sql := "SELECT count(*), sum(x) FROM t WHERE x >= 2048 AND x < 2058"

	serial := run(t, cat, sql, Options{BatchSize: 1024})
	if got := serial.Cols[0].Ints[0]; got != 10 {
		t.Errorf("count = %d, want 10", got)
	}
	if got := serial.Cols[1].Ints[0]; got != 20525 {
		t.Errorf("sum = %d, want 20525", got)
	}
	// Blocks 0, 1 (max 2047 < 2048) and 3 (min 3072 >= 2058) are provably
	// empty under the conjuncts; only block 2 survives.
	if serial.Stats.BlocksSkipped != 3 {
		t.Errorf("BlocksSkipped = %d, want 3", serial.Stats.BlocksSkipped)
	}
	if serial.Stats.RowsScanned != 1024 {
		t.Errorf("RowsScanned = %d, want 1024 (one surviving block)", serial.Stats.RowsScanned)
	}

	parallel := run(t, cat, sql, Options{BatchSize: 1024, Parallelism: 8})
	if parallel.Stats != serial.Stats {
		t.Errorf("parallel stats diverge:\nserial   %+v\nparallel %+v", serial.Stats, parallel.Stats)
	}
	if got := parallel.Cols[1].Ints[0]; got != 20525 {
		t.Errorf("parallel sum = %d, want 20525", got)
	}

	// Zone blocks only align with batches when the batch size is a block
	// multiple; otherwise skipping must disable itself, not misalign.
	unaligned := run(t, cat, sql, Options{BatchSize: 1000})
	if unaligned.Stats.BlocksSkipped != 0 {
		t.Errorf("unaligned batch size skipped %d blocks, want 0", unaligned.Stats.BlocksSkipped)
	}
	if got := unaligned.Cols[1].Ints[0]; got != 20525 {
		t.Errorf("unaligned sum = %d, want 20525", got)
	}
}

// TestZoneMapStringSkipping drives the string zone maps through the
// dictionary-coded predicate forms: equality on present and absent values,
// prefix LIKE and IN lists, each over a column whose blocks hold disjoint
// value ranges.
func TestZoneMapStringSkipping(t *testing.T) {
	words := []string{"alpha", "bravo", "carol", "delta"}
	n := 4096
	ss := make([]string, n)
	for i := range ss {
		ss[i] = words[i/1024]
	}
	tab := NewTable("t",
		TableColumn{Name: "s", Vec: strVec(ss...)},
		TableColumn{Name: "x", Vec: intVec(seq(n)...)},
	)
	if d := tab.DictFor("s"); d == nil || d.Len() != 4 {
		t.Fatalf("DictFor(s) = %v, want 4-entry dictionary", d)
	}
	cat := mapCatalog{"t": tab}
	opts := Options{BatchSize: 1024}

	cases := []struct {
		sql           string
		count         int64
		blocksSkipped int64
	}{
		{"SELECT count(*) FROM t WHERE s = 'carol'", 1024, 3},
		{"SELECT count(*) FROM t WHERE s = 'zeta'", 0, 4},
		{"SELECT count(*) FROM t WHERE s LIKE 'br%'", 1024, 3},
		{"SELECT count(*) FROM t WHERE s IN ('alpha', 'delta')", 2048, 2},
		{"SELECT count(*) FROM t WHERE s >= 'carol'", 2048, 2},
	}
	for _, tc := range cases {
		res := run(t, cat, tc.sql, opts)
		if got := res.Cols[0].Ints[0]; got != tc.count {
			t.Errorf("%s: count = %d, want %d", tc.sql, got, tc.count)
		}
		if res.Stats.BlocksSkipped != tc.blocksSkipped {
			t.Errorf("%s: BlocksSkipped = %d, want %d", tc.sql, res.Stats.BlocksSkipped, tc.blocksSkipped)
		}
	}
}

// TestDictHighCardinalityFallback pins the encoding gate: a string column
// above the cardinality cap must stay raw and still answer every predicate
// form correctly.
func TestDictHighCardinalityFallback(t *testing.T) {
	old := DictMaxCardinality
	DictMaxCardinality = 8
	defer func() { DictMaxCardinality = old }()

	n := 64
	ss := make([]string, n)
	for i := range ss {
		ss[i] = fmt.Sprintf("v%02d", i) // 64 distinct values > cap 8
	}
	tab := NewTable("t", TableColumn{Name: "s", Vec: strVec(ss...)})
	if tab.DictFor("s") != nil {
		t.Fatal("column above the cardinality cap was dictionary-encoded")
	}
	cat := mapCatalog{"t": tab}
	res := run(t, cat, "SELECT count(*) FROM t WHERE s = 'v07'", Options{BatchSize: 1024})
	if got := res.Cols[0].Ints[0]; got != 1 {
		t.Errorf("raw fallback count = %d, want 1", got)
	}
	res = run(t, cat, "SELECT count(*) FROM t WHERE s LIKE 'v1%'", Options{BatchSize: 1024})
	if got := res.Cols[0].Ints[0]; got != 10 {
		t.Errorf("raw fallback LIKE count = %d, want 10", got)
	}

	// At or below the cap the same shape encodes.
	low := make([]string, n)
	for i := range low {
		low[i] = fmt.Sprintf("w%d", i%8)
	}
	enc := NewTable("e", TableColumn{Name: "s", Vec: strVec(low...)})
	if d := enc.DictFor("s"); d == nil || d.Len() != 8 {
		t.Fatalf("DictFor at the cap = %v, want 8-entry dictionary", d)
	}
}

// TestDictionaryEncoding pins the encoder itself: sorted unique values,
// code lookup for present and absent strings, NULL preservation, and the
// decode round trip.
func TestDictionaryEncoding(t *testing.T) {
	v := strVec("beta", "alpha", "beta", "gamma", "alpha")
	v.SetNull(3) // the "gamma" row: NULLs must not leak into the dictionary
	e := dictEncode(v)
	if e.Dict == nil {
		t.Fatal("string vector not encoded")
	}
	if got, want := fmt.Sprint(e.Dict.Vals), "[alpha beta]"; got != want {
		t.Fatalf("dictionary = %s, want %s", got, want)
	}
	if c, ok := e.Dict.Code("beta"); !ok || c != 1 {
		t.Errorf("Code(beta) = (%d, %v), want (1, true)", c, ok)
	}
	if c, ok := e.Dict.Code("b"); ok || c != 1 {
		t.Errorf("Code(b) = (%d, %v), want insertion point (1, false)", c, ok)
	}
	if _, ok := e.Dict.Code("zzz"); ok {
		t.Error("Code(zzz) reported an absent value as present")
	}
	for i, want := range []string{"beta", "alpha", "beta", "", "alpha"} {
		if e.IsNull(i) != (i == 3) {
			t.Errorf("row %d: null = %v", i, e.IsNull(i))
		}
		if i != 3 && e.StrAt(i) != want {
			t.Errorf("StrAt(%d) = %q, want %q", i, e.StrAt(i), want)
		}
	}
	d := e.decode()
	if d.Dict != nil || d.Codes != nil {
		t.Error("decode left the vector encoded")
	}
	for i, want := range []string{"beta", "alpha", "beta", "", "alpha"} {
		if d.IsNull(i) != (i == 3) || (i != 3 && d.Strs[i] != want) {
			t.Errorf("decoded row %d = (%q, null=%v)", i, d.Strs[i], d.IsNull(i))
		}
	}
}

// TestDictDegenerateColumns covers the encoder's edge shapes: empty,
// all-NULL and single-distinct-value string columns, each driven through a
// zone-mapped query.
func TestDictDegenerateColumns(t *testing.T) {
	opts := Options{BatchSize: 1024}

	empty := mapCatalog{"t": NewTable("t", TableColumn{Name: "s", Vec: strVec()})}
	res := run(t, empty, "SELECT count(s) FROM t WHERE s = 'x'", opts)
	if got := res.Cols[0].Ints[0]; got != 0 {
		t.Errorf("empty column count = %d, want 0", got)
	}

	nulls := mapCatalog{"t": NewTable("t", TableColumn{Name: "s", Vec: allNullVec(KindString, 3000)})}
	res = run(t, nulls, "SELECT count(s) FROM t", opts)
	if got := res.Cols[0].Ints[0]; got != 0 {
		t.Errorf("all-NULL count(s) = %d, want 0", got)
	}
	// Every block has zero non-NULL rows: any compiled predicate is
	// NULL-rejecting, so all three blocks skip.
	res = run(t, nulls, "SELECT count(*) FROM t WHERE s = 'x'", opts)
	if got := res.Cols[0].Ints[0]; got != 0 {
		t.Errorf("all-NULL filtered count = %d, want 0", got)
	}
	if res.Stats.BlocksSkipped != 3 {
		t.Errorf("all-NULL BlocksSkipped = %d, want 3", res.Stats.BlocksSkipped)
	}

	ones := make([]string, 3000)
	for i := range ones {
		ones[i] = "only"
	}
	single := mapCatalog{"t": NewTable("t", TableColumn{Name: "s", Vec: strVec(ones...)})}
	res = run(t, single, "SELECT count(*) FROM t WHERE s = 'only'", opts)
	if got := res.Cols[0].Ints[0]; got != 3000 {
		t.Errorf("single-value count = %d, want 3000", got)
	}
	res = run(t, single, "SELECT count(*) FROM t WHERE s <> 'only'", opts)
	if got := res.Cols[0].Ints[0]; got != 0 {
		t.Errorf("single-value <> count = %d, want 0", got)
	}
	if res.Stats.BlocksSkipped != 3 {
		t.Errorf("single-value <> BlocksSkipped = %d, want 3", res.Stats.BlocksSkipped)
	}
}
