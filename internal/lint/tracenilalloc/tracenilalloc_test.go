package tracenilalloc_test

import (
	"testing"

	"sqalpel/internal/lint/analysistest"
	"sqalpel/internal/lint/tracenilalloc"
)

func TestTraceNilAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", tracenilalloc.Analyzer, "internal/vexec")
}
