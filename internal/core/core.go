// Package core is the public façade of the sqalpel library: it ties the
// query-space grammar, the SQL-to-grammar deriver, the query pool with its
// morphing strategies, the execution engines, the measurement harness, the
// discriminative search and the analytics into one convenient API.
//
// A typical local session looks like:
//
//	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.01})
//	project, _ := core.NewProject("q1", baselineSQL, core.ProjectOptions{})
//	project.AddEngineTarget("columba-1.0", engine.NewColEngine(), db)
//	project.AddEngineTarget("tuplestore-1.0", engine.NewRowEngine(), db)
//	project.GrowPool(20)
//	project.Run(3)
//	findings := project.Discriminative("columba-1.0", "tuplestore-1.0", 5)
//
// The same types also feed the platform (internal/server) and the benchmark
// harness that regenerates the paper's tables and figures.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"sqalpel/internal/analytics"
	"sqalpel/internal/derive"
	"sqalpel/internal/discriminative"
	"sqalpel/internal/engine"
	"sqalpel/internal/grammar"
	"sqalpel/internal/metrics"
	"sqalpel/internal/plan"
	"sqalpel/internal/pool"
	"sqalpel/internal/repository"
	"sqalpel/internal/trace"
)

// EngineTarget adapts an Engine plus a Database to the metrics.Target
// interface used by the measurement harness. It stands in for the JDBC
// connections of the paper's experiment driver. The built-in engines only
// read the database during execution and their plan cache is
// concurrency-safe, so an EngineTarget is safe for concurrent use by the
// scheduler's worker pool; repeated repetitions of one query share a single
// cached logical plan, keeping the measured timings free of front-end work.
type EngineTarget struct {
	Engine  engine.Engine
	DB      *engine.Database
	Timeout time.Duration
	// Parallelism is the intra-query morsel worker cap forwarded to every
	// execution (engines without morsel support ignore it); 0 or 1 runs
	// serially.
	Parallelism int
	// Trace enables per-operator span collection (internal/trace): every
	// execution carries its serialized QueryTrace back through the reserved
	// measurement extra, where it surfaces as Measurement.Trace.
	Trace bool
}

// SetTrace toggles per-operator tracing; the experiment driver uses it when
// its configuration asks for traces.
func (t *EngineTarget) SetTrace(on bool) { t.Trace = on }

// Run executes the query once.
func (t *EngineTarget) Run(query string) (int, map[string]string, error) {
	return t.run(query, engine.ExecOptions{Timeout: t.Timeout, Parallelism: t.Parallelism})
}

// RunContext executes the query once, tightening the engine timeout to the
// context deadline; it implements metrics.ContextTarget. A plain
// cancellation (no deadline) also returns promptly: the engines cannot be
// interrupted mid-query, so the abandoned execution finishes on its own
// goroutine — reading the immutable database, bounded by the engine
// timeout when one is set — and its result is discarded.
func (t *EngineTarget) RunContext(ctx context.Context, query string) (int, map[string]string, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	opts := engine.ExecOptions{Timeout: t.Timeout, Parallelism: t.Parallelism}
	if deadline, ok := ctx.Deadline(); ok {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// An expired deadline must not degrade into "no engine timeout".
			return 0, nil, context.DeadlineExceeded
		}
		if opts.Timeout == 0 || remaining < opts.Timeout {
			opts.Timeout = remaining
		}
	}
	type execResult struct {
		rows  int
		extra map[string]string
		err   error
	}
	done := make(chan execResult, 1)
	go func() {
		rows, extra, err := t.run(query, opts)
		done <- execResult{rows, extra, err}
	}()
	select {
	case r := <-done:
		return r.rows, r.extra, r.err
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
}

func (t *EngineTarget) run(query string, opts engine.ExecOptions) (int, map[string]string, error) {
	var tr *trace.Tracer
	if t.Trace {
		tr = trace.NewTracer()
		opts.Tracer = tr
	}
	res, err := t.Engine.Execute(t.DB, query, opts)
	if err != nil {
		return 0, nil, err
	}
	extra := map[string]string{}
	for k, v := range res.Stats.Map() {
		extra[k] = fmt.Sprintf("%d", v)
	}
	if tr != nil {
		key := engine.EngineKey(t.Engine.Name(), t.Engine.Version())
		if data, jerr := tr.Trace(key).JSON(); jerr == nil {
			extra[trace.MeasurementExtraKey] = string(data)
		}
	}
	return res.NumRows(), extra, nil
}

// ProjectOptions configure a local project.
type ProjectOptions struct {
	// Derive are the SQL-to-grammar heuristics; zero value means defaults.
	Derive derive.Options
	// Pool configures the query pool (seed, cap, dialect, steering).
	Pool pool.Options
	// Runs is the number of repetitions per measurement (default 5).
	Runs int
	// SearchGrowPerRound and SearchTopK tune the guided walk.
	SearchGrowPerRound int
	SearchTopK         int
	// Parallelism is the total concurrency budget of the measurement
	// plane: the scheduler measures Parallelism/QueryParallelism cells at
	// once (floored at one — so a QueryParallelism above the budget still
	// measures, one over-wide execution at a time). 0 or 1 measures
	// serially. The findings are identical at any worker count — only
	// wall-clock changes.
	Parallelism int
	// QueryParallelism is the intra-query morsel worker cap of every
	// engine target the project registers (vektor's morsel-parallel
	// pipelines; the interpreters ignore it). The measurement scheduler
	// divides the Parallelism budget by it, so intra- and inter-query
	// parallelism share one cap. 0 or 1 executes queries serially.
	QueryParallelism int
	// Timeout bounds a single query repetition during the search; zero
	// means no limit.
	Timeout time.Duration
	// Trace enables per-operator tracing on every engine target the project
	// registers; traces surface as Measurement.Trace and feed the
	// operator-level discriminative attribution.
	Trace bool
}

func (o ProjectOptions) withDefaults() ProjectOptions {
	if o.Derive == (derive.Options{}) {
		o.Derive = derive.DefaultOptions()
	}
	if o.Runs <= 0 {
		o.Runs = metrics.DefaultRuns
	}
	return o
}

// Project is a local, in-process performance project: a grammar, its query
// pool and a set of target systems.
type Project struct {
	Name     string
	Baseline string
	Grammar  *grammar.Grammar

	opts    ProjectOptions
	pool    *pool.Pool
	targets map[string]metrics.Target
	search  *discriminative.Search
	// plans is shared by every engine target of the project, so the
	// repetition discipline (5 runs × warmups × every engine) pays the SQL
	// front end once per distinct variant.
	plans *plan.Cache
}

// NewProject derives the grammar from the baseline query and seeds the pool.
func NewProject(name, baselineSQL string, opts ProjectOptions) (*Project, error) {
	opts = opts.withDefaults()
	g, err := derive.FromSQL(baselineSQL, opts.Derive)
	if err != nil {
		return nil, err
	}
	return newProject(name, baselineSQL, g, opts)
}

// NewProjectFromGrammar builds a project from a hand-written grammar, the
// other entry point the platform offers.
func NewProjectFromGrammar(name, grammarText string, opts ProjectOptions) (*Project, error) {
	opts = opts.withDefaults()
	g, err := grammar.Parse(grammarText)
	if err != nil {
		return nil, err
	}
	return newProject(name, "", g, opts)
}

func newProject(name, baseline string, g *grammar.Grammar, opts ProjectOptions) (*Project, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p, err := pool.New(g, opts.Pool)
	if err != nil {
		return nil, err
	}
	proj := &Project{
		Name:     name,
		Baseline: baseline,
		Grammar:  g,
		opts:     opts,
		pool:     p,
		targets:  map[string]metrics.Target{},
		plans:    plan.NewCache(0),
	}
	if baseline == "" {
		proj.Baseline = p.Baseline().SQL
	}
	return proj, nil
}

// Pool exposes the query pool.
func (p *Project) Pool() *pool.Pool { return p.pool }

// Space returns the query-space summary of the project's grammar (the
// paper's Table 2 row for this baseline query).
func (p *Project) Space() (grammar.SpaceSummary, error) {
	return p.Grammar.Space(grammar.DefaultEnumerateOptions())
}

// AddTarget registers an arbitrary measurement target under a name.
func (p *Project) AddTarget(name string, t metrics.Target) {
	p.targets[name] = t
	p.search = nil
}

// AddEngineTarget registers an in-process engine plus database as a target,
// named after the engine unless a name is given. The engine joins the
// project's shared plan cache, so every target of the project (and every
// repetition of the measurement discipline) reuses one logical plan per
// distinct query variant.
func (p *Project) AddEngineTarget(name string, eng engine.Engine, db *engine.Database) {
	if name == "" {
		name = engine.EngineKey(eng.Name(), eng.Version())
	}
	if pc, ok := eng.(engine.PlanCached); ok {
		pc.SetPlanCache(p.plans)
	}
	p.AddTarget(name, &EngineTarget{
		Engine:      eng,
		DB:          db,
		Timeout:     30 * time.Second,
		Parallelism: p.opts.QueryParallelism,
		Trace:       p.opts.Trace,
	})
}

// AddRegistryTargets registers every built-in engine (all three execution
// paradigms, every release) against the database and returns the target
// names in registry order.
func (p *Project) AddRegistryTargets(db *engine.Database) []string {
	reg := engine.NewRegistry()
	keys := reg.Keys()
	for _, key := range keys {
		p.AddEngineTarget(key, reg.Get(key), db)
	}
	return keys
}

// PlanCacheStats returns how many logical-plan lookups by the project's
// engine targets hit and missed the shared plan cache.
func (p *Project) PlanCacheStats() (hits, misses uint64) {
	return p.plans.Stats()
}

// Matrix computes the pairwise discrimination matrix over every registered
// target from the outcomes measured so far.
func (p *Project) Matrix() ([]discriminative.MatrixCell, error) {
	s, err := p.ensureSearch()
	if err != nil {
		return nil, err
	}
	return s.Matrix(), nil
}

// Targets returns the registered target names, sorted.
func (p *Project) Targets() []string {
	names := make([]string, 0, len(p.targets))
	for n := range p.targets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SeedPool adds n random query variants to the pool.
func (p *Project) SeedPool(n int) error {
	_, err := p.pool.SeedRandom(n)
	return err
}

// GrowPool applies the morphing strategies until n new variants were added.
func (p *Project) GrowPool(n int) int {
	return len(p.pool.Grow(n))
}

// ensureSearch lazily constructs the discriminative search.
func (p *Project) ensureSearch() (*discriminative.Search, error) {
	if p.search != nil {
		return p.search, nil
	}
	s, err := discriminative.New(p.pool, p.targets, discriminative.Options{
		Runs:             p.opts.Runs,
		GrowPerRound:     p.opts.SearchGrowPerRound,
		TopK:             p.opts.SearchTopK,
		Parallelism:      p.opts.Parallelism,
		QueryParallelism: p.opts.QueryParallelism,
		Timeout:          p.opts.Timeout,
	})
	if err != nil {
		return nil, err
	}
	p.search = s
	return s, nil
}

// MeasureAll measures every pool entry on every registered target.
func (p *Project) MeasureAll() error {
	s, err := p.ensureSearch()
	if err != nil {
		return err
	}
	s.MeasurePending()
	return nil
}

// Run performs the guided discriminative search for the given number of
// rounds between the first two registered targets (alphabetically) or the
// explicitly named pair.
func (p *Project) Run(rounds int, pair ...string) error {
	s, err := p.ensureSearch()
	if err != nil {
		return err
	}
	a, b, err := p.pairOrDefault(pair)
	if err != nil {
		return err
	}
	s.Run(a, b, rounds)
	return nil
}

func (p *Project) pairOrDefault(pair []string) (string, string, error) {
	if len(pair) == 2 {
		return pair[0], pair[1], nil
	}
	names := p.Targets()
	if len(names) < 2 {
		return "", "", fmt.Errorf("project needs at least two targets, has %d", len(names))
	}
	return names[0], names[1], nil
}

// Discriminative returns the topN queries that run relatively better on
// target `fast` than on target `slow`.
func (p *Project) Discriminative(fast, slow string, topN int) ([]discriminative.Finding, error) {
	s, err := p.ensureSearch()
	if err != nil {
		return nil, err
	}
	return s.Better(fast, slow, topN), nil
}

// Summary returns a one-line report of the search state.
func (p *Project) Summary() string {
	if p.search == nil {
		return fmt.Sprintf("project %q: pool %d queries, nothing measured yet", p.Name, p.pool.Size())
	}
	a, b, err := p.pairOrDefault(nil)
	if err != nil {
		return fmt.Sprintf("project %q: pool %d queries", p.Name, p.pool.Size())
	}
	return fmt.Sprintf("project %q: %s", p.Name, p.search.Summary(a, b))
}

// Runs converts all measured outcomes into analytics records, one per
// (query, target) pair.
func (p *Project) Runs() []analytics.Run {
	if p.search == nil {
		return nil
	}
	var out []analytics.Run
	for _, o := range p.search.Outcomes() {
		entry := o.Entry
		var terms []string
		for _, lits := range entry.Sentence().Literals {
			for _, l := range lits {
				terms = append(terms, l.Text)
			}
		}
		for _, target := range p.search.Targets() {
			m := o.ByTarget[target]
			if m == nil {
				continue
			}
			run := analytics.Run{
				QueryID:    entry.ID,
				SQL:        entry.SQL,
				Strategy:   string(entry.Strategy),
				ParentID:   entry.ParentID,
				Components: entry.Components,
				Terms:      terms,
				Target:     target,
			}
			if m.Failed() {
				run.Error = m.Err
			} else {
				run.Seconds = m.Min().Seconds()
			}
			out = append(out, run)
		}
	}
	return out
}

// History returns the experiment-history series for one target (Figure 7).
func (p *Project) History(target string) []analytics.HistoryPoint {
	return analytics.History(p.Runs(), target)
}

// Components returns the dominant-component attribution for one target
// (Figure 2).
func (p *Project) Components(target string) []analytics.Component {
	return analytics.Components(p.Runs(), target)
}

// Speedup compares two targets query by query (Figure 3).
func (p *Project) Speedup(baseTarget, otherTarget string) analytics.SpeedupSummary {
	return analytics.Speedup(p.Runs(), baseTarget, otherTarget)
}

// Diff builds the query-differential page for two pool entries (Figure 4).
func (p *Project) Diff(queryA, queryB int) (analytics.Differential, error) {
	return analytics.Diff(p.Runs(), queryA, queryB)
}

// ExportCSV writes all runs in the platform's CSV format.
func (p *Project) ExportCSV(w io.Writer) error {
	return analytics.WriteCSV(w, p.Runs())
}

// QueryRecords converts the pool into the repository's storage format, used
// when uploading a locally grown pool to the platform.
func (p *Project) QueryRecords() []repository.QueryRecord {
	var out []repository.QueryRecord
	for _, e := range p.pool.Entries() {
		var terms []string
		for _, lits := range e.Sentence().Literals {
			for _, l := range lits {
				terms = append(terms, l.Text)
			}
		}
		out = append(out, repository.QueryRecord{
			ID:         e.ID,
			SQL:        e.SQL,
			Strategy:   string(e.Strategy),
			ParentID:   e.ParentID,
			Components: e.Components,
			Terms:      terms,
		})
	}
	return out
}

// GrammarText renders the project's grammar in its source syntax, the form
// stored and edited on the platform.
func (p *Project) GrammarText() string { return p.Grammar.String() }
