package engine

import (
	"strings"
	"testing"
	"time"
)

// miniDB builds a small hand-written database shared by the executor tests.
func miniDB() *Database {
	db := NewDatabase("mini")

	nation := NewTable("nation",
		Column{Name: "n_nationkey", Type: TypeInt},
		Column{Name: "n_name", Type: TypeString},
		Column{Name: "n_regionkey", Type: TypeInt},
		Column{Name: "n_comment", Type: TypeString},
	)
	names := []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "FRANCE", "GERMANY", "INDIA"}
	for i, n := range names {
		nation.MustAppendRow(NewInt(int64(i)), NewString(n), NewInt(int64(i%3)), NewString("comment "+n))
	}
	db.AddTable(nation)

	region := NewTable("region",
		Column{Name: "r_regionkey", Type: TypeInt},
		Column{Name: "r_name", Type: TypeString},
	)
	for i, n := range []string{"AFRICA", "AMERICA", "ASIA"} {
		region.MustAppendRow(NewInt(int64(i)), NewString(n))
	}
	db.AddTable(region)

	orders := NewTable("orders",
		Column{Name: "o_orderkey", Type: TypeInt},
		Column{Name: "o_nationkey", Type: TypeInt},
		Column{Name: "o_total", Type: TypeFloat},
		Column{Name: "o_date", Type: TypeDate},
		Column{Name: "o_status", Type: TypeString},
	)
	for i := 1; i <= 20; i++ {
		orders.MustAppendRow(
			NewInt(int64(i)),
			NewInt(int64(i%8)),
			NewFloat(float64(i)*10.5),
			NewDate(MustParseDate("1995-01-01")+int64(i*10)),
			NewString([]string{"F", "O", "P"}[i%3]),
		)
	}
	db.AddTable(orders)
	return db
}

func runBoth(t *testing.T, db *Database, sql string) (*Result, *Result) {
	t.Helper()
	row, err := NewRowEngine().Execute(db, sql, ExecOptions{})
	if err != nil {
		t.Fatalf("row engine failed on %q: %v", sql, err)
	}
	col, err := NewColEngine().Execute(db, sql, ExecOptions{})
	if err != nil {
		t.Fatalf("col engine failed on %q: %v", sql, err)
	}
	return row, col
}

func TestSimpleProjectionAndFilter(t *testing.T) {
	db := miniDB()
	row, col := runBoth(t, db, "SELECT n_name FROM nation WHERE n_name = 'BRAZIL'")
	for _, res := range []*Result{row, col} {
		if res.NumRows() != 1 || res.Rows[0][0].S != "BRAZIL" {
			t.Errorf("result = %v", res.Rows)
		}
		if len(res.Columns) != 1 || res.Columns[0] != "n_name" {
			t.Errorf("columns = %v", res.Columns)
		}
	}
}

func TestStarAndQualifiedStar(t *testing.T) {
	db := miniDB()
	row, col := runBoth(t, db, "SELECT * FROM region")
	for _, res := range []*Result{row, col} {
		if res.NumRows() != 3 || len(res.Columns) != 2 {
			t.Errorf("star select wrong shape: %v %v", res.Columns, res.NumRows())
		}
	}
	row, col = runBoth(t, db, "SELECT n.* FROM nation n WHERE n.n_nationkey < 2")
	for _, res := range []*Result{row, col} {
		if res.NumRows() != 2 || len(res.Columns) != 4 {
			t.Errorf("qualified star wrong shape: %v rows %d", res.Columns, res.NumRows())
		}
	}
}

func TestCountStarAndAggregates(t *testing.T) {
	db := miniDB()
	row, col := runBoth(t, db, "SELECT count(*), sum(o_total), min(o_total), max(o_total), avg(o_total) FROM orders")
	for _, res := range []*Result{row, col} {
		if res.NumRows() != 1 {
			t.Fatalf("aggregate result rows = %d", res.NumRows())
		}
		if res.Rows[0][0].Int() != 20 {
			t.Errorf("count = %v", res.Rows[0][0])
		}
		wantSum := 0.0
		for i := 1; i <= 20; i++ {
			wantSum += float64(i) * 10.5
		}
		if got := res.Rows[0][1].Float(); got < wantSum-0.01 || got > wantSum+0.01 {
			t.Errorf("sum = %v, want %v", got, wantSum)
		}
		if res.Rows[0][2].Float() != 10.5 || res.Rows[0][3].Float() != 210 {
			t.Errorf("min/max = %v / %v", res.Rows[0][2], res.Rows[0][3])
		}
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	db := miniDB()
	row, col := runBoth(t, db, "SELECT count(*), sum(o_total) FROM orders WHERE o_total < 0")
	for _, res := range []*Result{row, col} {
		if res.NumRows() != 1 {
			t.Fatalf("expected one row, got %d", res.NumRows())
		}
		if res.Rows[0][0].Int() != 0 {
			t.Errorf("count over empty input = %v", res.Rows[0][0])
		}
		if !res.Rows[0][1].IsNull() {
			t.Errorf("sum over empty input should be NULL, got %v", res.Rows[0][1])
		}
	}
}

func TestGroupByHavingOrderLimit(t *testing.T) {
	db := miniDB()
	sql := `SELECT o_status, count(*) AS cnt, sum(o_total) AS total
		FROM orders GROUP BY o_status HAVING count(*) > 5
		ORDER BY total DESC LIMIT 2`
	row, col := runBoth(t, db, sql)
	if row.Fingerprint() != col.Fingerprint() {
		t.Fatalf("engines disagree:\n%s\nvs\n%s", row.Fingerprint(), col.Fingerprint())
	}
	if row.NumRows() > 2 {
		t.Errorf("limit not applied: %d rows", row.NumRows())
	}
	// Ordering: totals must be descending.
	if row.NumRows() == 2 && row.Rows[0][2].Float() < row.Rows[1][2].Float() {
		t.Error("ORDER BY DESC not respected")
	}
}

func TestDistinct(t *testing.T) {
	db := miniDB()
	row, col := runBoth(t, db, "SELECT DISTINCT n_regionkey FROM nation ORDER BY n_regionkey")
	for _, res := range []*Result{row, col} {
		if res.NumRows() != 3 {
			t.Errorf("distinct rows = %d, want 3", res.NumRows())
		}
	}
}

func TestJoins(t *testing.T) {
	db := miniDB()
	commaJoin := "SELECT n_name, r_name FROM nation, region WHERE n_regionkey = r_regionkey ORDER BY n_name"
	explicitJoin := "SELECT n_name, r_name FROM nation JOIN region ON n_regionkey = r_regionkey ORDER BY n_name"
	rc, cc := runBoth(t, db, commaJoin)
	re, ce := runBoth(t, db, explicitJoin)
	if rc.Fingerprint() != re.Fingerprint() || cc.Fingerprint() != ce.Fingerprint() {
		t.Error("comma join and explicit join should produce the same result")
	}
	if rc.Fingerprint() != cc.Fingerprint() {
		t.Error("row and column engines disagree on join result")
	}
	if rc.NumRows() != 8 {
		t.Errorf("join rows = %d, want 8", rc.NumRows())
	}
}

func TestLeftOuterJoin(t *testing.T) {
	db := miniDB()
	// region ASIA (key 2) has nations; add a region with no nations.
	db.Table("region").MustAppendRow(NewInt(9), NewString("NOWHERE"))
	sql := `SELECT r_name, count(n_nationkey) AS cnt
		FROM region LEFT JOIN nation ON n_regionkey = r_regionkey
		GROUP BY r_name ORDER BY r_name`
	row, col := runBoth(t, db, sql)
	if row.Fingerprint() != col.Fingerprint() {
		t.Fatal("engines disagree on left join")
	}
	foundEmpty := false
	for _, r := range row.Rows {
		if r[0].S == "NOWHERE" {
			foundEmpty = true
			if r[1].Int() != 0 {
				t.Errorf("NOWHERE count = %v, want 0", r[1])
			}
		}
	}
	if !foundEmpty {
		t.Error("left join lost the unmatched region")
	}
}

func TestLeftJoinWithResidualCondition(t *testing.T) {
	db := miniDB()
	sql := `SELECT n_name, r_name FROM nation LEFT JOIN region ON n_regionkey = r_regionkey AND r_name <> 'ASIA' ORDER BY n_name`
	row, col := runBoth(t, db, sql)
	if row.Fingerprint() != col.Fingerprint() {
		t.Fatal("engines disagree")
	}
	// Nations in ASIA must still appear, with NULL region.
	sawNull := false
	for _, r := range row.Rows {
		if r[1].IsNull() {
			sawNull = true
		}
	}
	if !sawNull {
		t.Error("expected null-extended rows for the excluded region")
	}
}

func TestCrossJoinGuard(t *testing.T) {
	db := miniDB()
	_, err := NewColEngine().Execute(db, "SELECT n_name FROM nation, orders", ExecOptions{MaxJoinRows: 50})
	if err == nil || !strings.Contains(err.Error(), "row limit") {
		t.Errorf("expected cross product guard error, got %v", err)
	}
}

func TestSubqueries(t *testing.T) {
	db := miniDB()
	// Uncorrelated scalar.
	row, col := runBoth(t, db, "SELECT o_orderkey FROM orders WHERE o_total = (SELECT max(o_total) FROM orders)")
	for _, res := range []*Result{row, col} {
		if res.NumRows() != 1 || res.Rows[0][0].Int() != 20 {
			t.Errorf("scalar subquery result = %v", res.Rows)
		}
	}
	// IN subquery.
	row, col = runBoth(t, db, `SELECT n_name FROM nation WHERE n_nationkey IN (SELECT o_nationkey FROM orders WHERE o_total > 150) ORDER BY n_name`)
	if row.Fingerprint() != col.Fingerprint() {
		t.Error("engines disagree on IN subquery")
	}
	// Correlated EXISTS.
	row, col = runBoth(t, db, `SELECT n_name FROM nation WHERE EXISTS (SELECT * FROM orders WHERE o_nationkey = n_nationkey AND o_total > 180) ORDER BY n_name`)
	if row.Fingerprint() != col.Fingerprint() {
		t.Error("engines disagree on EXISTS subquery")
	}
	// NOT EXISTS.
	rowNE, colNE := runBoth(t, db, `SELECT n_name FROM nation WHERE NOT EXISTS (SELECT * FROM orders WHERE o_nationkey = n_nationkey) ORDER BY n_name`)
	if rowNE.Fingerprint() != colNE.Fingerprint() {
		t.Error("engines disagree on NOT EXISTS subquery")
	}
	if rowNE.NumRows()+row.NumRows() > 8 {
		t.Error("EXISTS partitioning looks wrong")
	}
	// Correlated scalar subquery.
	rowC, colC := runBoth(t, db, `SELECT o_orderkey FROM orders o1 WHERE o_total > (SELECT avg(o_total) FROM orders o2 WHERE o2.o_nationkey = o1.o_nationkey) ORDER BY o_orderkey`)
	if rowC.Fingerprint() != colC.Fingerprint() {
		t.Error("engines disagree on correlated scalar subquery")
	}
}

func TestDerivedTable(t *testing.T) {
	db := miniDB()
	sql := `SELECT status, cnt FROM (
		SELECT o_status AS status, count(*) AS cnt FROM orders GROUP BY o_status) sub
		WHERE cnt > 5 ORDER BY status`
	row, col := runBoth(t, db, sql)
	if row.Fingerprint() != col.Fingerprint() {
		t.Error("engines disagree on derived table")
	}
	if row.NumRows() == 0 {
		t.Error("derived table query returned nothing")
	}
}

func TestCaseBetweenInLike(t *testing.T) {
	db := miniDB()
	sql := `SELECT n_name,
		CASE WHEN n_regionkey = 0 THEN 'AFR' WHEN n_regionkey = 1 THEN 'AME' ELSE 'OTHER' END AS region_code
		FROM nation WHERE n_nationkey BETWEEN 1 AND 5 AND n_name LIKE '%A%' AND n_regionkey IN (0, 1, 2)
		ORDER BY n_name`
	row, col := runBoth(t, db, sql)
	if row.Fingerprint() != col.Fingerprint() {
		t.Error("engines disagree")
	}
	for _, r := range row.Rows {
		if r[1].S != "AFR" && r[1].S != "AME" && r[1].S != "OTHER" {
			t.Errorf("unexpected case output %v", r[1])
		}
	}
}

func TestDateArithmeticAndExtract(t *testing.T) {
	db := miniDB()
	sql := `SELECT o_orderkey, EXTRACT(YEAR FROM o_date) AS y FROM orders
		WHERE o_date >= DATE '1995-01-01' AND o_date < DATE '1995-01-01' + INTERVAL '3' MONTH
		ORDER BY o_orderkey`
	row, col := runBoth(t, db, sql)
	if row.Fingerprint() != col.Fingerprint() {
		t.Error("engines disagree")
	}
	for _, r := range row.Rows {
		if r[1].Int() != 1995 {
			t.Errorf("extract year = %v", r[1])
		}
	}
	if row.NumRows() == 0 || row.NumRows() == 20 {
		t.Errorf("date range filter looks wrong: %d rows", row.NumRows())
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	db := miniDB()
	byAlias, _ := runBoth(t, db, "SELECT n_name AS nm FROM nation ORDER BY nm DESC LIMIT 3")
	byOrdinal, _ := runBoth(t, db, "SELECT n_name AS nm FROM nation ORDER BY 1 DESC LIMIT 3")
	if byAlias.Fingerprint() != byOrdinal.Fingerprint() {
		t.Error("alias and ordinal ordering disagree")
	}
	if byAlias.Rows[0][0].S != "INDIA" {
		t.Errorf("descending order wrong: %v", byAlias.Rows[0][0])
	}
}

func TestLimitOffset(t *testing.T) {
	db := miniDB()
	row, col := runBoth(t, db, "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5 OFFSET 10")
	for _, res := range []*Result{row, col} {
		if res.NumRows() != 5 || res.Rows[0][0].Int() != 11 {
			t.Errorf("limit/offset wrong: %v", res.Rows)
		}
	}
}

func TestUnionOperations(t *testing.T) {
	db := miniDB()
	row, col := runBoth(t, db, "SELECT n_name FROM nation WHERE n_regionkey = 0 UNION SELECT n_name FROM nation WHERE n_regionkey = 1 ORDER BY n_name")
	if row.Fingerprint() != col.Fingerprint() {
		t.Error("engines disagree on UNION")
	}
	all, _ := runBoth(t, db, "SELECT n_name FROM nation UNION ALL SELECT n_name FROM nation")
	if all.NumRows() != 16 {
		t.Errorf("UNION ALL rows = %d, want 16", all.NumRows())
	}
	except, _ := runBoth(t, db, "SELECT n_name FROM nation EXCEPT SELECT n_name FROM nation WHERE n_regionkey = 0")
	intersect, _ := runBoth(t, db, "SELECT n_name FROM nation INTERSECT SELECT n_name FROM nation WHERE n_regionkey = 0")
	if except.NumRows()+intersect.NumRows() != 8 {
		t.Errorf("EXCEPT (%d) + INTERSECT (%d) should cover all nations", except.NumRows(), intersect.NumRows())
	}
}

func TestCountDistinct(t *testing.T) {
	db := miniDB()
	row, col := runBoth(t, db, "SELECT count(DISTINCT n_regionkey) FROM nation")
	for _, res := range []*Result{row, col} {
		if res.Rows[0][0].Int() != 3 {
			t.Errorf("count distinct = %v, want 3", res.Rows[0][0])
		}
	}
}

func TestErrors(t *testing.T) {
	db := miniDB()
	eng := NewColEngine()
	cases := []string{
		"SELECT * FROM missing_table",
		"SELECT bogus_column FROM nation",
		"SELECT sum(n_nationkey FROM nation",
		"SELECT n_name FROM nation WHERE unknown = 3",
		"SELECT nosuchfunc(n_name) FROM nation",
	}
	for _, sql := range cases {
		if _, err := eng.Execute(db, sql, ExecOptions{}); err == nil {
			t.Errorf("query %q should have failed", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := miniDB()
	// Self join makes unqualified n_name ambiguous.
	_, err := NewRowEngine().Execute(db, "SELECT n_name FROM nation a, nation b WHERE a.n_nationkey = b.n_nationkey", ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
	// Qualified access works.
	res, err := NewRowEngine().Execute(db, "SELECT a.n_name FROM nation a, nation b WHERE a.n_nationkey = b.n_nationkey", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 8 {
		t.Errorf("self join rows = %d, want 8", res.NumRows())
	}
}

func TestTimeout(t *testing.T) {
	db := miniDB()
	// An extremely small timeout on a query with enough work must abort.
	big := NewTable("big", Column{Name: "x", Type: TypeInt})
	for i := 0; i < 200000; i++ {
		big.MustAppendRow(NewInt(int64(i)))
	}
	db.AddTable(big)
	_, err := NewColEngine().Execute(db, "SELECT count(*) FROM big a, big b WHERE a.x = b.x AND a.x % 7 = 1", ExecOptions{Timeout: time.Microsecond})
	if err == nil {
		t.Error("expected timeout error")
	}
}

func TestEngineMetadata(t *testing.T) {
	row, col := NewRowEngine(), NewColEngine()
	if row.Name() == col.Name() {
		t.Error("engines should have distinct names")
	}
	if row.Dialect() == "" || col.Version() == "" {
		t.Error("metadata must be populated")
	}
	reg := NewRegistry()
	if len(reg.Keys()) < 3 {
		t.Errorf("registry keys = %v, want at least 3 engines", reg.Keys())
	}
	if reg.Get(EngineKey("tuplestore", "1.0")) == nil {
		t.Error("registry lookup failed")
	}
	if reg.Get("nope-1.0") != nil {
		t.Error("unknown engine should be nil")
	}
	if len(reg.Engines()) != len(reg.Keys()) {
		t.Error("Engines and Keys must align")
	}
}

func TestStatsDifferBetweenEngines(t *testing.T) {
	db := miniDB()
	sql := "SELECT o_status, sum(o_total * (1 - 0.05) * (1 + 0.02)) FROM orders GROUP BY o_status"
	row, col := runBoth(t, db, sql)
	if row.Fingerprint() != col.Fingerprint() {
		t.Fatal("engines disagree on result")
	}
	if col.Stats.IntermediatesMaterialized == 0 {
		t.Error("column engine should materialise intermediates")
	}
	if row.Stats.IntermediatesMaterialized != 0 {
		t.Error("row engine should not materialise intermediates")
	}
	if row.Stats.TuplesMaterialized == 0 {
		t.Error("row engine should copy full tuples")
	}
	if col.Stats.GuardCasts == 0 {
		t.Error("column engine should pay guard casts on multiplications")
	}
	// The improved column engine version drops the guard casts.
	v2 := NewColEngineWithOptions(ColEngineOptions{Version: "2.0", DisableGuardCasts: true})
	res2, err := v2.Execute(db, sql, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.GuardCasts != 0 {
		t.Error("version 2.0 should not pay guard casts")
	}
	if res2.Fingerprint() != col.Fingerprint() {
		t.Error("versions disagree on results")
	}
}

func TestRowEngineEarlyExitStats(t *testing.T) {
	db := miniDB()
	sql := "SELECT o_orderkey FROM orders WHERE o_total > 0 LIMIT 1"
	row, col := runBoth(t, db, sql)
	if row.NumRows() != 1 || col.NumRows() != 1 {
		t.Fatal("limit result wrong")
	}
	// Both scan the table, but the row engine stops filtering after the
	// first match while the column engine materialises the full selection.
	if row.Stats.RowsReturned != 1 {
		t.Errorf("row engine rows returned = %d", row.Stats.RowsReturned)
	}
}

func TestResultHelpers(t *testing.T) {
	db := miniDB()
	res, err := NewRowEngine().Execute(db, "SELECT n_name, n_regionkey FROM nation ORDER BY n_name LIMIT 2", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "n_name") || !strings.Contains(s, "ALGERIA") {
		t.Errorf("result string = %q", s)
	}
	if res.Fingerprint() == "" {
		t.Error("fingerprint empty")
	}
	m := res.Stats.Map()
	if m["rows_returned"] != 2 {
		t.Errorf("stats map = %v", m)
	}
}
