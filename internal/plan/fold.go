package plan

import (
	"math"
	"strconv"
	"strings"

	"sqalpel/internal/sqlparser"
)

// FoldExpr constant-folds integer literal arithmetic inside a filter
// predicate: `x < 10 + 5` plans as `x < 15`, so none of the engines pays the
// addition per row. Folding is deliberately conservative — only +, - and *
// over plain integer literals, skipped on overflow — so the folded predicate
// evaluates to exactly the values the original would, with the engines'
// integer-preserving arithmetic. The input tree is never modified; nodes are
// rebuilt only on the path to a folded constant. Sub-query statements keep
// their identity, so plan lookups by statement pointer are unaffected.
func FoldExpr(e sqlparser.Expr) sqlparser.Expr {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		left := FoldExpr(v.Left)
		right := FoldExpr(v.Right)
		if li, lok := intLit(left); lok {
			if ri, rok := intLit(right); rok {
				if folded, ok := foldInt(v.Op, li, ri); ok {
					return &sqlparser.NumberLit{Value: strconv.FormatInt(folded, 10)}
				}
			}
		}
		if left != v.Left || right != v.Right {
			cp := *v
			cp.Left = left
			cp.Right = right
			return &cp
		}
		return v
	case *sqlparser.ParenExpr:
		inner := FoldExpr(v.Expr)
		if _, ok := intLit(inner); ok {
			// A parenthesized constant is just the constant.
			return inner
		}
		if inner != v.Expr {
			return &sqlparser.ParenExpr{Expr: inner}
		}
		return v
	case *sqlparser.UnaryExpr:
		inner := FoldExpr(v.Expr)
		if v.Op == "-" {
			if n, ok := intLit(inner); ok && n != math.MinInt64 {
				return &sqlparser.NumberLit{Value: strconv.FormatInt(-n, 10)}
			}
		}
		if inner != v.Expr {
			cp := *v
			cp.Expr = inner
			return &cp
		}
		return v
	default:
		return e
	}
}

// intLit reports whether the expression is a plain integer literal.
func intLit(e sqlparser.Expr) (int64, bool) {
	n, ok := e.(*sqlparser.NumberLit)
	if !ok {
		return 0, false
	}
	if strings.ContainsAny(n.Value, ".eE") {
		return 0, false
	}
	v, err := strconv.ParseInt(n.Value, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// foldInt evaluates an exact integer operation, refusing on overflow so the
// runtime arithmetic (which wraps) stays authoritative for such inputs.
func foldInt(op string, a, b int64) (int64, bool) {
	switch op {
	case "+":
		s := a + b
		if (b > 0 && s < a) || (b < 0 && s > a) {
			return 0, false
		}
		return s, true
	case "-":
		d := a - b
		if (b < 0 && d < a) || (b > 0 && d > a) {
			return 0, false
		}
		return d, true
	case "*":
		if a == 0 || b == 0 {
			return 0, true
		}
		p := a * b
		if p/b != a {
			return 0, false
		}
		return p, true
	default:
		return 0, false
	}
}
