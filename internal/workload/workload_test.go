package workload

import (
	"strings"
	"testing"

	"sqalpel/internal/sqlparser"
)

func TestTPCHHas22Queries(t *testing.T) {
	qs := TPCH()
	if len(qs) != 22 {
		t.Fatalf("TPCH query count = %d, want 22", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q.ID] {
			t.Errorf("duplicate query id %s", q.ID)
		}
		seen[q.ID] = true
		if q.Name == "" || q.SQL == "" {
			t.Errorf("query %s is incomplete", q.ID)
		}
	}
}

func TestAllWorkloadQueriesParse(t *testing.T) {
	for workload, qs := range All() {
		for _, q := range qs {
			if _, err := sqlparser.Parse(q.SQL); err != nil {
				t.Errorf("%s %s does not parse: %v", workload, q.ID, err)
			}
		}
	}
}

func TestTPCHQueriesRoundTrip(t *testing.T) {
	for _, q := range TPCH() {
		stmt, err := sqlparser.Parse(q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		rendered := stmt.SQL()
		stmt2, err := sqlparser.Parse(rendered)
		if err != nil {
			t.Fatalf("%s: rendered SQL does not re-parse: %v\n%s", q.ID, err, rendered)
		}
		if stmt2.SQL() != rendered {
			t.Errorf("%s: rendering is not a fixed point", q.ID)
		}
	}
}

func TestTPCHQueryLookup(t *testing.T) {
	q, err := TPCHQuery("q17")
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != "Q17" {
		t.Errorf("lookup returned %s, want Q17", q.ID)
	}
	if _, err := TPCHQuery("Q23"); err == nil {
		t.Error("Q23 should not exist")
	}
}

func TestTPCHIDsOrdered(t *testing.T) {
	ids := TPCHIDs()
	if len(ids) != 22 {
		t.Fatalf("id count = %d", len(ids))
	}
	if ids[0] != "Q1" || ids[1] != "Q2" || ids[9] != "Q10" || ids[21] != "Q22" {
		t.Errorf("ids not in numeric order: %v", ids)
	}
}

func TestTPCHReturnsCopies(t *testing.T) {
	a := TPCH()
	a[0].SQL = "mutated"
	b := TPCH()
	if b[0].SQL == "mutated" {
		t.Error("TPCH should return an independent copy")
	}
}

func TestSpecificQueryShapes(t *testing.T) {
	q1, _ := TPCHQuery("Q1")
	stmt, err := sqlparser.Parse(q1.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Projection) != 10 {
		t.Errorf("Q1 projection count = %d, want 10", len(stmt.Projection))
	}
	if len(stmt.GroupBy) != 2 || len(stmt.OrderBy) != 2 {
		t.Errorf("Q1 group/order = %d/%d, want 2/2", len(stmt.GroupBy), len(stmt.OrderBy))
	}

	q19, _ := TPCHQuery("Q19")
	stmt, err = sqlparser.Parse(q19.SQL)
	if err != nil {
		t.Fatal(err)
	}
	// Q19 is the classic OR-of-AND query; the WHERE must be a top-level OR.
	be, ok := stmt.Where.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "OR" {
		t.Errorf("Q19 WHERE should be an OR, got %T", stmt.Where)
	}

	q21, _ := TPCHQuery("Q21")
	stmt, err = sqlparser.Parse(q21.SQL)
	if err != nil {
		t.Fatal(err)
	}
	subs := sqlparser.Subqueries(stmt.Where)
	if len(subs) != 2 {
		t.Errorf("Q21 should have 2 correlated sub-queries (EXISTS / NOT EXISTS), got %d", len(subs))
	}
}

func TestNationSampleGrammarAndBaseline(t *testing.T) {
	if !strings.Contains(NationSampleGrammar, "l_column:") {
		t.Error("sample grammar must define l_column")
	}
	if _, err := sqlparser.Parse(NationBaselineQuery); err != nil {
		t.Errorf("baseline query does not parse: %v", err)
	}
}

func TestSSBAndAirtrafficShapes(t *testing.T) {
	if len(SSB()) < 4 {
		t.Error("expected at least 4 SSB queries")
	}
	if len(Airtraffic()) < 3 {
		t.Error("expected at least 3 airtraffic queries")
	}
	for _, q := range SSB() {
		if !strings.Contains(q.SQL, "lineorder") {
			t.Errorf("%s should reference the lineorder fact table", q.ID)
		}
	}
	for _, q := range Airtraffic() {
		if !strings.Contains(q.SQL, "flights") {
			t.Errorf("%s should reference the flights table", q.ID)
		}
	}
}
