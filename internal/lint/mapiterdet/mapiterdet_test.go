package mapiterdet_test

import (
	"testing"

	"sqalpel/internal/lint/analysistest"
	"sqalpel/internal/lint/mapiterdet"
)

func TestMapIterDet(t *testing.T) {
	analysistest.Run(t, "testdata", mapiterdet.Analyzer, "internal/plan", "other/util")
}
