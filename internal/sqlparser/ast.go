package sqlparser

import (
	"fmt"
	"strings"
)

// Node is implemented by every AST node. SQL renders the node back to SQL
// text in the sqalpel dialect; the rendering is canonical (keywords upper
// case, single spaces) so two structurally identical queries render to the
// same string.
type Node interface {
	SQL() string
}

// Statement is the interface of top-level SQL statements.
type Statement interface {
	Node
	statement()
}

// SelectStatement is a full SELECT query, optionally combined with other
// selects through set operators (UNION / EXCEPT / INTERSECT).
type SelectStatement struct {
	Distinct   bool
	Projection []SelectItem
	From       []TableExpr
	Where      Expr
	GroupBy    []Expr
	Having     Expr
	OrderBy    []OrderItem
	Limit      *int64
	Offset     *int64

	// SetOp chains this select with the next one, e.g. UNION ALL.
	SetOp   string // "", "UNION", "UNION ALL", "EXCEPT", "INTERSECT"
	SetNext *SelectStatement
}

func (*SelectStatement) statement() {}

// SQL renders the statement.
func (s *SelectStatement) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Projection {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.SQL())
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.SQL())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.SQL())
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&sb, " LIMIT %d", *s.Limit)
	}
	if s.Offset != nil {
		fmt.Fprintf(&sb, " OFFSET %d", *s.Offset)
	}
	if s.SetNext != nil {
		sb.WriteString(" ")
		sb.WriteString(s.SetOp)
		sb.WriteString(" ")
		sb.WriteString(s.SetNext.SQL())
	}
	return sb.String()
}

// SelectItem is one element of the projection list.
type SelectItem struct {
	// Star is true for a bare `*` or a qualified `t.*`; Expr is nil then and
	// Qualifier may carry the table alias.
	Star      bool
	Qualifier string
	Expr      Expr
	Alias     string
}

// SQL renders the projection element.
func (s SelectItem) SQL() string {
	if s.Star {
		if s.Qualifier != "" {
			return s.Qualifier + ".*"
		}
		return "*"
	}
	out := s.Expr.SQL()
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SQL renders the order item.
func (o OrderItem) SQL() string {
	out := o.Expr.SQL()
	if o.Desc {
		out += " DESC"
	}
	return out
}

// TableExpr is a table reference in the FROM clause.
type TableExpr interface {
	Node
	tableExpr()
}

// TableName references a base table, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableExpr() {}

// SQL renders the table reference.
func (t *TableName) SQL() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// DerivedTable is a parenthesised sub-select used as a table, always aliased.
type DerivedTable struct {
	Select *SelectStatement
	Alias  string
}

func (*DerivedTable) tableExpr() {}

// SQL renders the derived table.
func (d *DerivedTable) SQL() string {
	out := "(" + d.Select.SQL() + ")"
	if d.Alias != "" {
		out += " " + d.Alias
	}
	return out
}

// JoinExpr is an explicit JOIN between two table expressions.
type JoinExpr struct {
	Kind  string // "INNER", "LEFT", "RIGHT", "FULL", "CROSS"
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for CROSS joins
}

func (*JoinExpr) tableExpr() {}

// SQL renders the join.
func (j *JoinExpr) SQL() string {
	kw := j.Kind + " JOIN"
	if j.Kind == "INNER" {
		kw = "JOIN"
	}
	out := j.Left.SQL() + " " + kw + " " + j.Right.SQL()
	if j.On != nil {
		out += " ON " + j.On.SQL()
	}
	return out
}

// Expr is the interface of all expression nodes.
type Expr interface {
	Node
	expr()
}

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table  string
	Column string
}

func (*ColumnRef) expr() {}

// SQL renders the reference.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// NumberLit is a numeric literal kept in source form.
type NumberLit struct {
	Value string
}

func (*NumberLit) expr() {}

// SQL renders the literal.
func (n *NumberLit) SQL() string { return n.Value }

// StringLit is a string literal.
type StringLit struct {
	Value string
}

func (*StringLit) expr() {}

// SQL renders the literal with quote escaping.
func (s *StringLit) SQL() string {
	return "'" + strings.ReplaceAll(s.Value, "'", "''") + "'"
}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Value bool
}

func (*BoolLit) expr() {}

// SQL renders the literal.
func (b *BoolLit) SQL() string {
	if b.Value {
		return "TRUE"
	}
	return "FALSE"
}

// NullLit is the NULL literal.
type NullLit struct{}

func (*NullLit) expr() {}

// SQL renders NULL.
func (*NullLit) SQL() string { return "NULL" }

// DateLit is a DATE 'yyyy-mm-dd' literal.
type DateLit struct {
	Value string // ISO date text
}

func (*DateLit) expr() {}

// SQL renders the literal.
func (d *DateLit) SQL() string { return "DATE '" + d.Value + "'" }

// IntervalLit is an INTERVAL 'n' unit literal, e.g. INTERVAL '3' MONTH.
type IntervalLit struct {
	Value string
	Unit  string // YEAR, MONTH, DAY
}

func (*IntervalLit) expr() {}

// SQL renders the literal.
func (i *IntervalLit) SQL() string { return "INTERVAL '" + i.Value + "' " + i.Unit }

// BinaryExpr is a binary operation: arithmetic, comparison, AND/OR, LIKE,
// string concatenation.
type BinaryExpr struct {
	Op    string // "+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE", "NOT LIKE", "||"
	Left  Expr
	Right Expr
}

func (*BinaryExpr) expr() {}

// SQL renders the expression with minimal parentheses: nested AND/OR and
// arithmetic of lower precedence are parenthesised.
func (b *BinaryExpr) SQL() string {
	l := maybeParen(b.Left, b.Op, true)
	r := maybeParen(b.Right, b.Op, false)
	return l + " " + b.Op + " " + r
}

func precedence(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "<>", "<", "<=", ">", ">=", "LIKE", "NOT LIKE", "IN", "NOT IN", "BETWEEN", "IS":
		return 3
	case "+", "-", "||":
		return 4
	case "*", "/", "%":
		return 5
	default:
		return 6
	}
}

func maybeParen(e Expr, parentOp string, isLeft bool) string {
	be, ok := e.(*BinaryExpr)
	if !ok {
		return e.SQL()
	}
	pp, cp := precedence(parentOp), precedence(be.Op)
	if cp < pp || (cp == pp && !isLeft && (parentOp == "-" || parentOp == "/")) {
		return "(" + e.SQL() + ")"
	}
	return e.SQL()
}

// UnaryExpr is NOT <expr> or -<expr> or +<expr>.
type UnaryExpr struct {
	Op   string // "NOT", "-", "+"
	Expr Expr
}

func (*UnaryExpr) expr() {}

// SQL renders the expression.
func (u *UnaryExpr) SQL() string {
	if u.Op == "NOT" {
		return "NOT " + u.Expr.SQL()
	}
	if be, ok := u.Expr.(*BinaryExpr); ok {
		return u.Op + "(" + be.SQL() + ")"
	}
	return u.Op + u.Expr.SQL()
}

// ParenExpr preserves user parentheses that matter for readability of the
// generated grammar (e.g. OR groups).
type ParenExpr struct {
	Expr Expr
}

func (*ParenExpr) expr() {}

// SQL renders the parenthesised expression.
func (p *ParenExpr) SQL() string { return "(" + p.Expr.SQL() + ")" }

// FuncCall is a function or aggregate call.
type FuncCall struct {
	Name     string // canonical lower-case name
	Distinct bool   // e.g. count(DISTINCT x)
	Star     bool   // count(*)
	Args     []Expr
}

func (*FuncCall) expr() {}

// SQL renders the call.
func (f *FuncCall) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	var sb strings.Builder
	sb.WriteString(f.Name)
	sb.WriteString("(")
	if f.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.SQL())
	}
	sb.WriteString(")")
	return sb.String()
}

// IsAggregate reports whether the call is a SQL aggregate (count, sum, ...).
func (f *FuncCall) IsAggregate() bool { return IsAggregateName(f.Name) }

// CaseExpr is a searched or simple CASE expression.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN ... THEN ... arm of a CASE.
type CaseWhen struct {
	When Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// SQL renders the expression.
func (c *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" ")
		sb.WriteString(c.Operand.SQL())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN ")
		sb.WriteString(w.When.SQL())
		sb.WriteString(" THEN ")
		sb.WriteString(w.Then.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE ")
		sb.WriteString(c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// BetweenExpr is <expr> [NOT] BETWEEN <lo> AND <hi>.
type BetweenExpr struct {
	Not  bool
	Expr Expr
	Lo   Expr
	Hi   Expr
}

func (*BetweenExpr) expr() {}

// SQL renders the predicate.
func (b *BetweenExpr) SQL() string {
	kw := " BETWEEN "
	if b.Not {
		kw = " NOT BETWEEN "
	}
	return b.Expr.SQL() + kw + b.Lo.SQL() + " AND " + b.Hi.SQL()
}

// InExpr is <expr> [NOT] IN (list) or <expr> [NOT] IN (subquery).
type InExpr struct {
	Not      bool
	Expr     Expr
	List     []Expr
	Subquery *SelectStatement
}

func (*InExpr) expr() {}

// SQL renders the predicate.
func (i *InExpr) SQL() string {
	kw := " IN ("
	if i.Not {
		kw = " NOT IN ("
	}
	var sb strings.Builder
	sb.WriteString(i.Expr.SQL())
	sb.WriteString(kw)
	if i.Subquery != nil {
		sb.WriteString(i.Subquery.SQL())
	} else {
		for j, e := range i.List {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not      bool
	Subquery *SelectStatement
}

func (*ExistsExpr) expr() {}

// SQL renders the predicate.
func (e *ExistsExpr) SQL() string {
	kw := "EXISTS ("
	if e.Not {
		kw = "NOT EXISTS ("
	}
	return kw + e.Subquery.SQL() + ")"
}

// IsNullExpr is <expr> IS [NOT] NULL.
type IsNullExpr struct {
	Not  bool
	Expr Expr
}

func (*IsNullExpr) expr() {}

// SQL renders the predicate.
func (i *IsNullExpr) SQL() string {
	if i.Not {
		return i.Expr.SQL() + " IS NOT NULL"
	}
	return i.Expr.SQL() + " IS NULL"
}

// SubqueryExpr is a scalar sub-select used inside an expression, e.g. in a
// comparison against an aggregate over a correlated query.
type SubqueryExpr struct {
	Select *SelectStatement
}

func (*SubqueryExpr) expr() {}

// SQL renders the sub-select in parentheses.
func (s *SubqueryExpr) SQL() string { return "(" + s.Select.SQL() + ")" }

// ExtractExpr is EXTRACT(unit FROM expr).
type ExtractExpr struct {
	Unit string // YEAR, MONTH, DAY
	From Expr
}

func (*ExtractExpr) expr() {}

// SQL renders the expression.
func (e *ExtractExpr) SQL() string {
	return "EXTRACT(" + e.Unit + " FROM " + e.From.SQL() + ")"
}

// SubstringExpr is SUBSTRING(expr FROM start FOR length).
type SubstringExpr struct {
	Expr   Expr
	Start  Expr
	Length Expr // may be nil
}

func (*SubstringExpr) expr() {}

// SQL renders the expression.
func (s *SubstringExpr) SQL() string {
	out := "SUBSTRING(" + s.Expr.SQL() + " FROM " + s.Start.SQL()
	if s.Length != nil {
		out += " FOR " + s.Length.SQL()
	}
	return out + ")"
}

// CastExpr is CAST(expr AS type).
type CastExpr struct {
	Expr Expr
	Type string
}

func (*CastExpr) expr() {}

// SQL renders the expression.
func (c *CastExpr) SQL() string {
	return "CAST(" + c.Expr.SQL() + " AS " + c.Type + ")"
}

// ParamRef is a ${name} parameter reference; it appears only when parsing
// query templates produced by the grammar layer, never in complete queries.
type ParamRef struct {
	Name string
}

func (*ParamRef) expr() {}

// SQL renders the parameter reference.
func (p *ParamRef) SQL() string { return "${" + p.Name + "}" }

// WalkExprs calls fn for every expression node reachable from e, including e
// itself, in depth-first order. fn returning false prunes the walk below the
// current node.
func WalkExprs(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch v := e.(type) {
	case *BinaryExpr:
		WalkExprs(v.Left, fn)
		WalkExprs(v.Right, fn)
	case *UnaryExpr:
		WalkExprs(v.Expr, fn)
	case *ParenExpr:
		WalkExprs(v.Expr, fn)
	case *FuncCall:
		for _, a := range v.Args {
			WalkExprs(a, fn)
		}
	case *CaseExpr:
		WalkExprs(v.Operand, fn)
		for _, w := range v.Whens {
			WalkExprs(w.When, fn)
			WalkExprs(w.Then, fn)
		}
		WalkExprs(v.Else, fn)
	case *BetweenExpr:
		WalkExprs(v.Expr, fn)
		WalkExprs(v.Lo, fn)
		WalkExprs(v.Hi, fn)
	case *InExpr:
		WalkExprs(v.Expr, fn)
		for _, x := range v.List {
			WalkExprs(x, fn)
		}
	case *IsNullExpr:
		WalkExprs(v.Expr, fn)
	case *ExtractExpr:
		WalkExprs(v.From, fn)
	case *SubstringExpr:
		WalkExprs(v.Expr, fn)
		WalkExprs(v.Start, fn)
		WalkExprs(v.Length, fn)
	case *CastExpr:
		WalkExprs(v.Expr, fn)
	}
}

// ColumnsIn returns the distinct column references appearing in e, in first
// appearance order.
func ColumnsIn(e Expr) []*ColumnRef {
	var cols []*ColumnRef
	seen := map[string]bool{}
	WalkExprs(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			key := c.Table + "." + c.Column
			if !seen[key] {
				seen[key] = true
				cols = append(cols, c)
			}
		}
		return true
	})
	return cols
}

// Subqueries returns the sub-select statements directly embedded in e
// (scalar sub-queries, IN sub-queries and EXISTS predicates).
func Subqueries(e Expr) []*SelectStatement {
	var subs []*SelectStatement
	WalkExprs(e, func(x Expr) bool {
		switch v := x.(type) {
		case *SubqueryExpr:
			subs = append(subs, v.Select)
		case *InExpr:
			if v.Subquery != nil {
				subs = append(subs, v.Subquery)
			}
		case *ExistsExpr:
			subs = append(subs, v.Subquery)
		}
		return true
	})
	return subs
}

// HasAggregate reports whether the expression contains an aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	WalkExprs(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return true
	})
	return found
}
