package datagen

import (
	"fmt"

	"sqalpel/internal/engine"
)

// FuzzOptions parameterise the NULL-rich data set the differential fuzzer
// (internal/fuzzdiff) runs against. Unlike the benchmark schemas, whose
// columns are almost entirely non-NULL, every non-key column here carries a
// substantial NULL fraction so ternary-logic divergences between engines
// cannot hide behind clean data.
type FuzzOptions struct {
	// Rows is the size of the fact table; zero selects 400.
	Rows int
	// Seed makes the data set reproducible; zero selects the default seed.
	Seed uint64
	// NullRate is the probability of each nullable slot being NULL. Zero
	// (the field's default) selects 0.3; pass a negative value for a
	// NULL-free data set. Positive values are capped at 0.9.
	NullRate float64
}

// fuzzWords is the string domain: deliberately overlapping prefixes and
// suffixes so LIKE patterns split the data non-trivially.
var fuzzWords = []string{
	"alpha", "alto", "beta", "bravo", "gamma", "golf", "delta", "dora",
	"echo", "epsilon", "lima", "limit",
}

// fuzzLabels is the dimension-table label domain.
var fuzzLabels = []string{"north", "south", "east", "west", "nowhere"}

// Fuzz generates the nullable-rich database the grammar-driven differential
// fuzzer explores: a fact table t (nullable int/float/string/date columns
// plus non-NULL id and join key) and a small dimension table dim with a
// nullable label. Deterministic in (Rows, Seed, NullRate).
func Fuzz(opts FuzzOptions) *engine.Database {
	if opts.Rows <= 0 {
		opts.Rows = 400
	}
	if opts.NullRate == 0 {
		opts.NullRate = 0.3
	}
	if opts.NullRate < 0 {
		opts.NullRate = 0
	}
	if opts.NullRate > 0.9 {
		opts.NullRate = 0.9
	}
	r := newRNG(opts.Seed)
	db := engine.NewDatabase(fmt.Sprintf("fuzz-%d", opts.Rows))

	nullable := func(v engine.Value) engine.Value {
		if r.Float() < opts.NullRate {
			return engine.Null()
		}
		return v
	}

	baseDate := engine.MustParseDate("1997-01-01")

	t := engine.NewTable("t",
		engine.Column{Name: "id", Type: engine.TypeInt},
		engine.Column{Name: "k", Type: engine.TypeInt},
		engine.Column{Name: "a", Type: engine.TypeInt},
		engine.Column{Name: "b", Type: engine.TypeInt},
		engine.Column{Name: "f", Type: engine.TypeFloat},
		engine.Column{Name: "s", Type: engine.TypeString},
		engine.Column{Name: "d", Type: engine.TypeDate},
		engine.Column{Name: "g", Type: engine.TypeInt},
	)
	for i := 0; i < opts.Rows; i++ {
		t.MustAppendRow(
			engine.NewInt(int64(i+1)),
			engine.NewInt(int64(r.Intn(8))),
			nullable(engine.NewInt(int64(r.Intn(10)))),
			nullable(engine.NewInt(int64(r.Range(-50, 50)))),
			nullable(engine.NewFloat(float64(r.Range(0, 2000))/10)),
			nullable(engine.NewString(r.Pick(fuzzWords))),
			nullable(engine.NewDate(baseDate+int64(r.Intn(4*365)))),
			nullable(engine.NewInt(int64(r.Intn(5)))),
		)
	}
	db.AddTable(t)

	dim := engine.NewTable("dim",
		engine.Column{Name: "dk", Type: engine.TypeInt},
		engine.Column{Name: "label", Type: engine.TypeString},
		engine.Column{Name: "w", Type: engine.TypeInt},
	)
	for k := 0; k < 8; k++ {
		dim.MustAppendRow(
			engine.NewInt(int64(k)),
			nullable(engine.NewString(fuzzLabels[k%len(fuzzLabels)])),
			nullable(engine.NewInt(int64(k*k))),
		)
	}
	db.AddTable(dim)
	return db
}
