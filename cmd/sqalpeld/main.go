// Command sqalpeld runs the sqalpel platform server: the web application
// that manages users, catalogs, performance projects, query pools, the task
// queue and the result analytics. State lives in a sharded, write-ahead-
// logged store in the data directory: every mutation is fsynced to its
// shard's log before the request returns, so a crash — even kill -9 — loses
// no acknowledged measurement, and restart recovers from snapshot plus log
// replay. A data directory written by an older, single-JSON-file version is
// migrated transparently on first start.
//
// Usage:
//
//	sqalpeld -addr :8080 -data ./sqalpel-data -shards 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sqalpel/internal/repository"
	"sqalpel/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "sqalpel-data", "data directory (write-ahead logs + snapshots)")
	shards := flag.Int("shards", repository.DefaultShards, "store shard count; changing it between runs is safe")
	taskTimeout := flag.Duration("task-timeout", 10*time.Minute, "requeue tasks whose results were not delivered within this interval")
	checkpointEvery := flag.Duration("checkpoint-every", time.Minute, "interval between checkpoints (snapshot + log compaction)")
	flag.Parse()

	store, err := repository.Open(*dataDir, *shards)
	if err != nil {
		log.Fatalf("opening store in %s: %v", *dataDir, err)
	}
	store.TaskTimeout = *taskTimeout
	srv := server.New(server.Options{Store: store})

	httpServer := &http.Server{Addr: *addr, Handler: srv}

	// Periodic maintenance: expire stuck tasks and checkpoint the store.
	// Durability does not depend on the checkpoint — the logs already hold
	// every acknowledged mutation — it only bounds recovery replay time.
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*checkpointEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := store.ExpireTasks(); n > 0 {
					log.Printf("requeued %d stuck tasks", n)
				}
				if err := store.Checkpoint(); err != nil {
					log.Printf("checkpoint failed: %v", err)
				}
			case <-stop:
				return
			}
		}
	}()

	// Graceful shutdown on SIGINT/SIGTERM.
	go func() {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		<-sigs
		close(stop)
		if err := store.Checkpoint(); err != nil {
			log.Printf("final checkpoint failed: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Printf("closing store: %v", err)
		}
		_ = httpServer.Close()
	}()

	fmt.Printf("sqalpel platform listening on %s (data in %s, %d shards)\n", *addr, *dataDir, *shards)
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
