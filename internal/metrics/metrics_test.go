package metrics

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func fixedTarget(delay time.Duration, rows int) Target {
	return TargetFunc(func(query string) (int, map[string]string, error) {
		time.Sleep(delay)
		return rows, map[string]string{"engine": "fake"}, nil
	})
}

func TestMeasureDefaults(t *testing.T) {
	m := Measure(fixedTarget(time.Millisecond, 7), "SELECT 1", Options{})
	if m.Failed() {
		t.Fatalf("unexpected failure: %s", m.Err)
	}
	if len(m.Runs) != DefaultRuns {
		t.Errorf("runs = %d, want %d", len(m.Runs), DefaultRuns)
	}
	if m.Rows != 7 {
		t.Errorf("rows = %d, want 7", m.Rows)
	}
	if m.Min() <= 0 || m.Max() < m.Min() || m.Mean() < m.Min() || m.Mean() > m.Max() {
		t.Errorf("summary stats inconsistent: min=%v mean=%v max=%v", m.Min(), m.Mean(), m.Max())
	}
	if m.Extra["engine"] != "fake" {
		t.Errorf("extras = %v", m.Extra)
	}
	if _, ok := m.Extra["before_load_avg_1"]; !ok {
		t.Error("load averages should be attached to extras")
	}
	if len(m.Seconds()) != DefaultRuns {
		t.Error("Seconds() length mismatch")
	}
	if !strings.Contains(m.String(), "5 runs") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMeasureCustomRunsAndWarmup(t *testing.T) {
	calls := 0
	target := TargetFunc(func(query string) (int, map[string]string, error) {
		calls++
		return 1, nil, nil
	})
	m := Measure(target, "SELECT 1", Options{Runs: 3, WarmupRuns: 2})
	if len(m.Runs) != 3 {
		t.Errorf("runs = %d, want 3", len(m.Runs))
	}
	if calls != 5 {
		t.Errorf("target calls = %d, want 5 (2 warmup + 3 measured)", calls)
	}
}

func TestMeasureFailure(t *testing.T) {
	target := TargetFunc(func(query string) (int, map[string]string, error) {
		return 0, nil, errors.New("syntax error near FROM")
	})
	m := Measure(target, "SELECT", Options{})
	if !m.Failed() {
		t.Fatal("expected failure")
	}
	if len(m.Runs) != 0 {
		t.Error("failed measurements must not carry timings")
	}
	if m.Min() != 0 || m.Mean() != 0 || m.Median() != 0 {
		t.Error("summary of a failed measurement should be zero")
	}
	if !strings.Contains(m.String(), "error") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMeasureWarmupFailure(t *testing.T) {
	calls := 0
	target := TargetFunc(func(query string) (int, map[string]string, error) {
		calls++
		return 0, nil, errors.New("boom")
	})
	m := Measure(target, "SELECT 1", Options{Runs: 3, WarmupRuns: 1})
	if !m.Failed() || calls != 1 {
		t.Errorf("warmup failure should abort immediately (calls=%d)", calls)
	}
}

func TestSummaryStatistics(t *testing.T) {
	m := &Measurement{Runs: []time.Duration{
		40 * time.Millisecond,
		10 * time.Millisecond,
		20 * time.Millisecond,
		30 * time.Millisecond,
		50 * time.Millisecond,
	}}
	if m.Min() != 10*time.Millisecond {
		t.Errorf("min = %v", m.Min())
	}
	if m.Max() != 50*time.Millisecond {
		t.Errorf("max = %v", m.Max())
	}
	if m.Mean() != 30*time.Millisecond {
		t.Errorf("mean = %v", m.Mean())
	}
	if m.Median() != 30*time.Millisecond {
		t.Errorf("median = %v", m.Median())
	}
	if m.Stddev() <= 0 {
		t.Errorf("stddev = %v", m.Stddev())
	}
	even := &Measurement{Runs: []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}}
	if even.Median() != 15*time.Millisecond {
		t.Errorf("even median = %v", even.Median())
	}
}

// ctxTarget counts executions and honours cancellation; it implements
// ContextTarget.
type ctxTarget struct {
	calls int
	block time.Duration
}

func (c *ctxTarget) Run(string) (int, map[string]string, error) {
	c.calls++
	return 1, nil, nil
}

func (c *ctxTarget) RunContext(ctx context.Context, query string) (int, map[string]string, error) {
	c.calls++
	if c.block > 0 {
		select {
		case <-time.After(c.block):
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
	return 1, nil, nil
}

func TestMeasureContextCancelledBeforeStart(t *testing.T) {
	target := &ctxTarget{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := MeasureContext(ctx, target, "SELECT 1", Options{Runs: 3})
	if !m.Failed() {
		t.Fatal("cancelled measurement should fail")
	}
	if target.calls != 0 {
		t.Errorf("target executed %d times after cancellation", target.calls)
	}
	if len(m.Runs) != 0 {
		t.Errorf("failed measurement should carry no timings, got %d", len(m.Runs))
	}
}

func TestMeasureContextTimeoutAbortsContextTarget(t *testing.T) {
	target := &ctxTarget{block: time.Minute}
	start := time.Now()
	m := MeasureContext(context.Background(), target, "SELECT 1", Options{Runs: 3, Timeout: 5 * time.Millisecond})
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout did not abort the blocked repetition")
	}
	if !m.Failed() || !strings.Contains(m.Err, "context deadline exceeded") {
		t.Errorf("measurement = %+v", m)
	}
	if target.calls != 1 {
		t.Errorf("aborted measurement should stop after the first repetition, got %d", target.calls)
	}
}

func TestMeasureTimeoutFailsSlowPlainTargets(t *testing.T) {
	// Plain targets cannot be interrupted; the repetition is failed post hoc.
	m := Measure(fixedTarget(15*time.Millisecond, 1), "SELECT 1", Options{Runs: 2, Timeout: time.Millisecond})
	if !m.Failed() || !strings.Contains(m.Err, "timeout") {
		t.Errorf("measurement = %+v", m)
	}
}

func TestMeasureWithoutTimeoutUnchanged(t *testing.T) {
	m := Measure(fixedTarget(0, 7), "SELECT 1", Options{Runs: 2})
	if m.Failed() || len(m.Runs) != 2 || m.Rows != 7 {
		t.Errorf("measurement = %+v", m)
	}
}
