package workload

// NationSampleGrammar is the sample sqalpel grammar of the paper's Figure 1:
// seven rules describing a small query space over the TPC-H nation table.
const NationSampleGrammar = `query:
	SELECT ${projection} FROM ${l_tables} $[l_filter]
projection:
	${l_count}
	${l_column} ${columnlist}*
l_tables:
	nation
columnlist:
	, ${l_column}
l_column:
	n_nationkey
	n_name
	n_regionkey
	n_comment
l_count:
	count(*)
l_filter:
	WHERE n_name = 'BRAZIL'
`

// NationBaselineQuery is the baseline query the Figure 1 grammar was derived
// from: the full projection with the filter applied.
const NationBaselineQuery = `SELECT n_nationkey, n_name, n_regionkey, n_comment FROM nation WHERE n_name = 'BRAZIL'`

// ssb holds a representative subset of the Star Schema Benchmark query
// flights (one query per flight), phrased against the SSB star schema
// (lineorder fact table with date, customer, supplier and part dimensions).
var ssb = []Query{
	{
		ID:   "SSB-Q1.1",
		Name: "Revenue for a year and discount band",
		SQL: `SELECT sum(lo_extendedprice * lo_discount) AS revenue
FROM lineorder, dates
WHERE lo_orderdate = d_datekey
  AND d_year = 1993
  AND lo_discount BETWEEN 1 AND 3
  AND lo_quantity < 25`,
	},
	{
		ID:   "SSB-Q2.1",
		Name: "Revenue by brand and year for a part category",
		SQL: `SELECT sum(lo_revenue) AS revenue, d_year, p_brand
FROM lineorder, dates, part, supplier
WHERE lo_orderdate = d_datekey
  AND lo_partkey = p_partkey
  AND lo_suppkey = s_suppkey
  AND p_category = 'MFGR#12'
  AND s_region = 'AMERICA'
GROUP BY d_year, p_brand
ORDER BY d_year, p_brand`,
	},
	{
		ID:   "SSB-Q3.1",
		Name: "Revenue by customer and supplier nation",
		SQL: `SELECT c_nation, s_nation, d_year, sum(lo_revenue) AS revenue
FROM customer, lineorder, supplier, dates
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey
  AND c_region = 'ASIA'
  AND s_region = 'ASIA'
  AND d_year >= 1992 AND d_year <= 1997
GROUP BY c_nation, s_nation, d_year
ORDER BY d_year, revenue DESC`,
	},
	{
		ID:   "SSB-Q4.1",
		Name: "Profit by year and customer nation",
		SQL: `SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit
FROM dates, customer, supplier, part, lineorder
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_partkey = p_partkey
  AND lo_orderdate = d_datekey
  AND c_region = 'AMERICA'
  AND s_region = 'AMERICA'
  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
GROUP BY d_year, c_nation
ORDER BY d_year, c_nation`,
	},
}

// SSB returns the Star Schema Benchmark query subset.
func SSB() []Query {
	out := make([]Query, len(ssb))
	copy(out, ssb)
	return out
}

// airtraffic holds analytics queries over a flights table in the style of the
// well known airtraffic (on-time performance) data set the paper mentions as
// one of its bootstrap projects.
var airtraffic = []Query{
	{
		ID:   "AIR-Q1",
		Name: "Flights and average delay per carrier",
		SQL: `SELECT carrier, count(*) AS flights, avg(dep_delay) AS avg_dep_delay
FROM flights
WHERE fl_year = 2015
GROUP BY carrier
ORDER BY avg_dep_delay DESC`,
	},
	{
		ID:   "AIR-Q2",
		Name: "Busiest routes",
		SQL: `SELECT origin, dest, count(*) AS flights, avg(distance) AS avg_distance
FROM flights
WHERE cancelled = 0
GROUP BY origin, dest
ORDER BY flights DESC
LIMIT 25`,
	},
	{
		ID:   "AIR-Q3",
		Name: "Delay propagation for long flights",
		SQL: `SELECT carrier, fl_month,
  sum(CASE WHEN arr_delay > 15 THEN 1 ELSE 0 END) AS delayed,
  count(*) AS flights
FROM flights
WHERE distance > 1000
  AND dep_delay IS NOT NULL
GROUP BY carrier, fl_month
ORDER BY carrier, fl_month`,
	},
}

// Airtraffic returns the airtraffic analytics queries.
func Airtraffic() []Query {
	out := make([]Query, len(airtraffic))
	copy(out, airtraffic)
	return out
}

// All returns every workload query keyed by workload name.
func All() map[string][]Query {
	return map[string][]Query{
		"tpch":       TPCH(),
		"ssb":        SSB(),
		"airtraffic": Airtraffic(),
	}
}
