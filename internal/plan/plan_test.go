package plan

import (
	"strings"
	"sync"
	"testing"

	"sqalpel/internal/sqlparser"
)

// fakeCatalog is a minimal schema provider for the planner.
type fakeCatalog map[string][]string

func (c fakeCatalog) TableColumns(name string) ([]string, bool) {
	cols, ok := c[strings.ToLower(name)]
	return cols, ok
}

var testCat = fakeCatalog{
	"orders":   {"o_orderkey", "o_custkey", "o_total"},
	"customer": {"c_custkey", "c_name", "c_nation"},
	"lineitem": {"l_orderkey", "l_qty", "l_price"},
}

func mustBuild(t *testing.T, sql string) *Plan {
	t.Helper()
	p, err := Build(testCat, sql)
	if err != nil {
		t.Fatalf("Build(%q): %v", sql, err)
	}
	return p
}

func TestConjunctClassification(t *testing.T) {
	p := mustBuild(t, `SELECT c_name, o_total FROM customer, orders
		WHERE c_custkey = o_custkey AND c_nation = 'DE' AND 1 = 1 AND c_name < o_total`)
	sp := p.Root
	var joins, pushdowns, residuals int
	for _, c := range sp.Conjuncts {
		switch c.Class {
		case ClassJoin:
			joins++
		case ClassPushdown:
			pushdowns++
		case ClassResidual:
			residuals++
		}
	}
	if joins != 1 || pushdowns != 2 || residuals != 1 {
		t.Errorf("classes = %d join / %d pushdown / %d residual, want 1/2/1", joins, pushdowns, residuals)
	}
	if len(sp.JoinSteps) != 1 || sp.JoinSteps[0].Cross || len(sp.JoinSteps[0].LeftKeys) != 1 {
		t.Errorf("join steps = %+v, want one hash-join step with one key", sp.JoinSteps)
	}
	// The interpreters see every non-join conjunct as residual; the
	// vectorized executor pushes the single-table ones below the join.
	if len(sp.Residual) != 3 {
		t.Errorf("interpreter residual = %d conjuncts, want 3", len(sp.Residual))
	}
	if len(sp.VexecPushdown[0]) != 2 || len(sp.VexecResidual) != 1 {
		t.Errorf("vexec split = %d pushed / %d residual, want 2/1", len(sp.VexecPushdown[0]), len(sp.VexecResidual))
	}
}

func TestCrossJoinStepWhenNoEdge(t *testing.T) {
	p := mustBuild(t, "SELECT c_name FROM customer, lineitem WHERE c_nation = 'DE'")
	steps := p.Root.JoinSteps
	if len(steps) != 1 || !steps[0].Cross {
		t.Errorf("steps = %+v, want one cross step", steps)
	}
}

func TestVectorizableVerdict(t *testing.T) {
	cases := []struct {
		sql    string
		ok     bool
		reason string
	}{
		{"SELECT sum(o_total) FROM orders", true, ""},
		{"SELECT x FROM (SELECT o_total AS x FROM orders) d", true, ""},
		{"SELECT c_name FROM customer LEFT JOIN orders ON c_custkey = o_custkey", true, ""},
		{"SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders)", true, ""},
		{"SELECT c_name FROM customer WHERE EXISTS (SELECT 1 FROM orders WHERE o_custkey = c_custkey)", true, ""},
		{"SELECT c_name FROM customer WHERE c_custkey > (SELECT sum(o_total) FROM orders WHERE o_custkey = c_custkey)", true, ""},
		{"SELECT o_total FROM orders UNION SELECT o_total FROM orders", false, "set operations"},
		{"SELECT (SELECT sum(o_total) FROM orders WHERE o_custkey = c_custkey) FROM customer", false,
			"correlated sub-queries outside WHERE"},
		{"SELECT c_name FROM customer WHERE EXISTS (SELECT 1 FROM orders WHERE o_custkey > c_custkey)", false,
			"correlated sub-queries without an equi-join correlation predicate"},
	}
	for _, tc := range cases {
		p := mustBuild(t, tc.sql)
		if p.Vectorizable != tc.ok {
			t.Errorf("%q: vectorizable = %v, want %v", tc.sql, p.Vectorizable, tc.ok)
		}
		if !tc.ok && p.NotVectorizableReason != tc.reason {
			t.Errorf("%q: reason = %q, want %q", tc.sql, p.NotVectorizableReason, tc.reason)
		}
	}
}

func TestSubqueryRegistrationAndCorrelation(t *testing.T) {
	p := mustBuild(t, `SELECT c_name FROM customer
		WHERE c_custkey IN (SELECT o_custkey FROM orders)
		AND EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = c_custkey)`)
	var inStmt, existsStmt *sqlparser.SelectStatement
	sqlparser.WalkExprs(p.Root.Stmt.Where, func(x sqlparser.Expr) bool {
		switch v := x.(type) {
		case *sqlparser.InExpr:
			inStmt = v.Subquery
		case *sqlparser.ExistsExpr:
			existsStmt = v.Subquery
		}
		return true
	})
	if inStmt == nil || existsStmt == nil {
		t.Fatal("sub-query statements not found in AST")
	}
	if p.Sub(inStmt) == nil || p.Sub(existsStmt) == nil {
		t.Fatal("sub-queries were not planned")
	}
	if p.Correlated(inStmt) {
		t.Error("uncorrelated IN sub-query classified as correlated")
	}
	if !p.Correlated(existsStmt) {
		t.Error("correlated EXISTS sub-query classified as uncorrelated")
	}
}

func TestRightJoinNormalizesToLeft(t *testing.T) {
	p := mustBuild(t, "SELECT c_name FROM customer RIGHT JOIN orders ON c_custkey = o_custkey")
	in := p.Root.From[0]
	if in.Join == nil || in.Join.Kind != "LEFT" {
		t.Fatalf("join = %+v, want normalized LEFT", in.Join)
	}
	// After the swap, orders is the preserved (left) side.
	if in.Join.Left.Table != "orders" {
		t.Errorf("left side = %q, want orders", in.Join.Left.Table)
	}
	if len(in.Join.LeftKeys) != 1 {
		t.Errorf("equi keys = %d, want 1", len(in.Join.LeftKeys))
	}
}

func TestNeededColumnsAndEarlyLimit(t *testing.T) {
	p := mustBuild(t, "SELECT c_name FROM customer WHERE c_nation = 'DE' LIMIT 5 OFFSET 2")
	sp := p.Root
	need := sp.Needed["customer"]
	if !need["c_name"] || !need["c_nation"] || need["c_custkey"] {
		t.Errorf("needed columns = %v, want c_name and c_nation only", need)
	}
	if sp.EarlyLimit != 7 {
		t.Errorf("early limit = %d, want 7 (limit+offset)", sp.EarlyLimit)
	}
	grouped := mustBuild(t, "SELECT count(c_name) FROM customer LIMIT 5")
	if grouped.Root.EarlyLimit != 0 {
		t.Error("aggregate query must not early-exit")
	}
}

func TestConstantFolding(t *testing.T) {
	fold := func(sql string) string {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		return FoldExpr(stmt.Where).SQL()
	}
	got := fold("SELECT 1 FROM orders WHERE o_total < 10 + 5")
	if !strings.Contains(got, "15") || strings.Contains(got, "10") {
		t.Errorf("folded predicate = %q, want the literal 15", got)
	}
	// Floats and non-arithmetic operators stay untouched.
	if got := fold("SELECT 1 FROM orders WHERE o_total < 1.5 + 2"); strings.Contains(got, "3.5") {
		t.Errorf("float arithmetic must not fold, got %q", got)
	}
	// Folding must not lose the sub-expression's statement identity.
	p := mustBuild(t, "SELECT 1 FROM orders WHERE o_total < 2 * 3 AND o_custkey IN (SELECT c_custkey FROM customer)")
	subs := sqlparser.Subqueries(p.Root.Residual[len(p.Root.Residual)-1])
	if len(subs) != 1 || p.Sub(subs[0]) == nil {
		t.Error("sub-query behind a folded conjunct lost its plan")
	}
}

func TestOutSchemaStarExpansion(t *testing.T) {
	p := mustBuild(t, "SELECT *, o_total * 2 AS dbl FROM orders")
	want := []ColumnMeta{
		{Table: "orders", Name: "o_orderkey"},
		{Table: "orders", Name: "o_custkey"},
		{Table: "orders", Name: "o_total"},
		{Table: "", Name: "dbl"},
	}
	got := p.Root.OutSchema
	if len(got) != len(want) {
		t.Fatalf("out schema = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out schema[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Build(testCat, "SELEC nonsense")
	if err == nil || !strings.Contains(err.Error(), "parse error") {
		t.Errorf("err = %v, want a parse error", err)
	}
}

func TestCacheHitMissAndVersionInvalidation(t *testing.T) {
	c := NewCache(0)
	builds := 0
	build := func() (*Plan, error) {
		builds++
		return Build(testCat, "SELECT o_total FROM orders")
	}
	id := &struct{}{}
	for i := 0; i < 3; i++ {
		if _, err := c.GetOrBuild(Key(id, 1, "SELECT o_total FROM orders"), build); err != nil {
			t.Fatal(err)
		}
	}
	// Whitespace variants share the normalized key.
	if _, err := c.GetOrBuild(Key(id, 1, "  SELECT   o_total FROM orders ;"), build); err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Errorf("builds = %d, want 1", builds)
	}
	// A version bump invalidates.
	if _, err := c.GetOrBuild(Key(id, 2, "SELECT o_total FROM orders"), build); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Errorf("builds after version bump = %d, want 2", builds)
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 3/2", hits, misses)
	}
}

func TestCacheDropCatalog(t *testing.T) {
	c := NewCache(0)
	// Non-zero-size allocations: &struct{}{} values may share one address.
	a, b := new(int), new(int)
	build := func() (*Plan, error) { return Build(testCat, "SELECT o_total FROM orders") }
	for _, id := range []any{a, b} {
		if _, err := c.GetOrBuild(Key(id, 1, "SELECT o_total FROM orders"), build); err != nil {
			t.Fatal(err)
		}
	}
	c.DropCatalog(a)
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries after DropCatalog, want 1", c.Len())
	}
}

func TestCacheCapEviction(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 32; i++ {
		_, _ = c.GetOrBuild(Key(nil, uint64(i), "SELECT o_total FROM orders"), func() (*Plan, error) {
			return Build(testCat, "SELECT o_total FROM orders")
		})
	}
	if c.Len() > 4 {
		t.Errorf("cache grew to %d entries past its cap of 4", c.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sql := "SELECT o_total FROM orders"
				if (w+i)%2 == 0 {
					sql = "SELECT c_name FROM customer"
				}
				if _, err := c.GetOrBuild(Key(nil, 1, sql), func() (*Plan, error) {
					return Build(testCat, sql)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 2 {
		t.Errorf("cache holds %d plans, want 2", c.Len())
	}
}
