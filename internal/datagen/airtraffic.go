package datagen

import (
	"fmt"

	"sqalpel/internal/engine"
)

// AirtrafficOptions parameterise the airtraffic (on-time performance) data
// generator, the third bootstrap project the paper mentions.
type AirtrafficOptions struct {
	// Flights is the number of flight rows to generate.
	Flights int
	Seed    uint64
}

var (
	carriers = []string{"AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "VX"}
	airports = []string{"ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO", "EWR", "CLT", "PHX", "IAH", "MIA", "BOS", "MSP", "FLL", "DTW", "PHL", "LGA", "BWI", "SLC", "SAN", "IAD", "DCA", "MDW", "TPA", "PDX", "HNL"}
)

// Airtraffic generates a flights table mimicking the on-time performance
// data set (carrier, origin, destination, delays, distance, cancellations).
func Airtraffic(opts AirtrafficOptions) *engine.Database {
	if opts.Flights <= 0 {
		opts.Flights = 5000
	}
	r := newRNG(opts.Seed + 99)
	db := engine.NewDatabase(fmt.Sprintf("airtraffic-%d", opts.Flights))

	flights := engine.NewTable("flights",
		engine.Column{Name: "fl_year", Type: engine.TypeInt},
		engine.Column{Name: "fl_month", Type: engine.TypeInt},
		engine.Column{Name: "fl_day", Type: engine.TypeInt},
		engine.Column{Name: "fl_date", Type: engine.TypeDate},
		engine.Column{Name: "carrier", Type: engine.TypeString},
		engine.Column{Name: "flight_num", Type: engine.TypeInt},
		engine.Column{Name: "origin", Type: engine.TypeString},
		engine.Column{Name: "dest", Type: engine.TypeString},
		engine.Column{Name: "dep_delay", Type: engine.TypeFloat},
		engine.Column{Name: "arr_delay", Type: engine.TypeFloat},
		engine.Column{Name: "distance", Type: engine.TypeInt},
		engine.Column{Name: "cancelled", Type: engine.TypeInt},
	)
	start := engine.MustParseDate("2015-01-01")
	for i := 0; i < opts.Flights; i++ {
		day := start + int64(r.Intn(365))
		y, m, d := engine.DateParts(day)
		origin := r.Pick(airports)
		dest := r.Pick(airports)
		for dest == origin {
			dest = r.Pick(airports)
		}
		cancelled := 0
		if r.Intn(100) < 2 {
			cancelled = 1
		}
		depDelay := engine.NewFloat(float64(r.Range(-10, 180)) * r.Float())
		arrDelay := engine.NewFloat(depDelay.Float() + float64(r.Range(-20, 40)))
		if cancelled == 1 {
			depDelay = engine.Null()
			arrDelay = engine.Null()
		}
		flights.MustAppendRow(
			engine.NewInt(int64(y)),
			engine.NewInt(int64(m)),
			engine.NewInt(int64(d)),
			engine.NewDate(day),
			engine.NewString(r.Pick(carriers)),
			engine.NewInt(int64(r.Range(1, 9999))),
			engine.NewString(origin),
			engine.NewString(dest),
			depDelay,
			arrDelay,
			engine.NewInt(int64(r.Range(100, 3000))),
			engine.NewInt(int64(cancelled)),
		)
	}
	db.AddTable(flights)
	return db
}

// NamedDatabase builds one of the bootstrap databases by name:
// "tpch" (scale via sf), "ssb" (scale via sf), "airtraffic" (sf is the
// number of thousands of flights) or "fuzz" (sf is the number of thousands
// of NULL-rich fact rows).
func NamedDatabase(name string, sf float64) (*engine.Database, error) {
	switch name {
	case "tpch":
		return TPCH(TPCHOptions{ScaleFactor: sf}), nil
	case "ssb":
		return SSB(SSBOptions{ScaleFactor: sf}), nil
	case "airtraffic":
		return Airtraffic(AirtrafficOptions{Flights: int(sf * 1000)}), nil
	case "fuzz":
		return Fuzz(FuzzOptions{Rows: int(sf * 1000)}), nil
	default:
		return nil, fmt.Errorf("unknown data set %q (want tpch, ssb, airtraffic or fuzz)", name)
	}
}
