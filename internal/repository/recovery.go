package repository

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

func defaultLogf(format string, args ...any) { log.Printf(format, args...) }

// Open loads (or creates) a durable store in dir and attaches a write-ahead
// log to every partition: from then on each mutation is fsynced to the
// owning partition's log before it returns. shardCount <= 0 selects
// DefaultShards.
//
// Recovery works from whatever provably hit the disk: the newest valid
// snapshot per partition (falling back to the previous snapshot when the
// newest is corrupt), plus the replay of the log tail, dropping a torn or
// corrupt trailing record with a logged warning instead of refusing to
// boot. A legacy single-file sqalpel.json store is migrated transparently.
// Opening always writes a fresh generation of the on-disk layout, which is
// also how shard-count changes between runs are absorbed.
func Open(dir string, shardCount int) (*Store, error) {
	return open(dir, shardCount, defaultLogf, openFileSink)
}

// open is Open with the recovery-warning logger and the WAL sink factory
// injectable, which is how the crash-point and corruption test harnesses
// observe warnings and simulate kill -9 mid-append.
func open(dir string, shardCount int, logf func(string, ...any), sinks walSinkFactory) (*Store, error) {
	if shardCount <= 0 {
		shardCount = DefaultShards
	}
	s := NewStoreShards(shardCount)
	s.logf = logf
	s.sinks = sinks
	if err := loadInto(s, dir); err != nil {
		return nil, err
	}
	s.dir = dir
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	//lint:iolocked startup path: the store is not yet published, and the recovery checkpoint must complete before any WAL attaches
	genDir, err := s.writeGeneration(dir, func(part, walFile string) error {
		sink, err := sinks(walFile)
		if err != nil {
			return fmt.Errorf("opening %s wal: %w", part, err)
		}
		w := &walWriter{sink: sink}
		if part == partMeta {
			s.metaWAL = w
			return nil
		}
		idx, err := strconv.Atoi(strings.TrimPrefix(part, "s"))
		if err != nil || idx < 0 || idx >= len(s.shards) {
			return fmt.Errorf("unexpected partition %q", part)
		}
		s.shards[idx].wal = w
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.gen = genDir
	return s, nil
}

// Load reads a store previously written by Save (any generation layout) or
// by the legacy single-file format, without attaching a write-ahead log: a
// missing directory yields an empty store rather than an error, so a fresh
// deployment just works. Use Open for the durable store.
func Load(dir string) (*Store, error) {
	s := NewStore()
	if err := loadInto(s, dir); err != nil {
		return nil, err
	}
	return s, nil
}

// Close flushes and detaches the write-ahead logs; the store stays usable
// in memory but further mutations are no longer persisted.
func (s *Store) Close() error {
	var first error
	s.metaMu.Lock()
	if s.metaWAL != nil {
		//lint:iolocked detach seam: closing the sink must be atomic with clearing metaWAL, or a racing mutator appends to a closed log
		if err := s.metaWAL.sink.Close(); err != nil && first == nil {
			first = err
		}
		s.metaWAL = nil
	}
	s.metaMu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.wal != nil {
			//lint:iolocked detach seam: closing the sink must be atomic with clearing sh.wal, or a racing mutator appends to a closed log
			if err := sh.wal.sink.Close(); err != nil && first == nil {
				first = err
			}
			sh.wal = nil
		}
		sh.mu.Unlock()
	}
	s.dir = ""
	return first
}

// loader accumulates id high-water marks while recovery merges snapshots
// and replays logs, so freed ids are never reissued even when the highest
// row was deleted after the last snapshot.
type loader struct {
	s                                              *Store
	maxProject, maxResult, maxComment, maxTask     int
	nextProject, nextResult, nextComment, nextTask int
	taskTimeoutSeconds                             int
}

// loadInto recovers the persistent state in dir into the (empty) store s,
// which may be sharded differently from the store that wrote it: projects
// and their dependent rows are redistributed to s's own shards.
func loadInto(s *Store, dir string) error {
	ld := &loader{s: s}
	current, err := os.ReadFile(filepath.Join(dir, currentFile))
	switch {
	case err == nil:
		genDir := filepath.Join(dir, strings.TrimSpace(string(current)))
		if _, err := os.Stat(genDir); err != nil {
			return fmt.Errorf("CURRENT names missing generation %q: %w", strings.TrimSpace(string(current)), err)
		}
		if err := ld.loadGeneration(genDir); err != nil {
			return err
		}
	case os.IsNotExist(err):
		// No generation pointer: either a legacy single-file store or a
		// fresh deployment.
		if err := ld.loadLegacy(filepath.Join(dir, legacyFile)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("reading CURRENT: %w", err)
	}
	ld.finish()
	return nil
}

// loadGeneration recovers every partition of one generation directory:
// newest valid snapshot first, then the log tail.
func (ld *loader) loadGeneration(genDir string) error {
	for _, part := range partitionNames(genDir) {
		var adopted uint64
		found := false
		for _, lsn := range partSnapshots(genDir, part) {
			data, err := os.ReadFile(snapPath(genDir, part, lsn))
			if err == nil {
				var snap snapshot
				if err = json.Unmarshal(data, &snap); err == nil {
					ld.mergeSnapshot(snap)
					adopted = snap.WALLSN
					found = true
					break
				}
			}
			ld.s.logf("repository: %s: snapshot at lsn %d unreadable (%v); falling back to the previous snapshot", part, lsn, err)
		}
		if !found && len(partSnapshots(genDir, part)) > 0 {
			ld.s.logf("repository: %s: no valid snapshot; replaying the full log", part)
		}
		raw, err := os.ReadFile(walPath(genDir, part))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("reading %s wal: %w", part, err)
		}
		for _, rec := range decodeWAL(raw, part+".wal", ld.s.logf) {
			if rec.LSN <= adopted {
				continue // the snapshot already contains this record
			}
			if err := ld.replay(part, rec); err != nil {
				ld.s.logf("repository: %s: stopping replay at lsn %d: %v", part, rec.LSN, err)
				break
			}
		}
	}
	return nil
}

// loadLegacy reads a pre-WAL single-file store. A missing file yields an
// empty store; a corrupt one is an error (there is no older snapshot to
// fall back to, and silently booting empty would discard the world).
func (ld *loader) loadLegacy(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("reading store: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("decoding store: %w", err)
	}
	ld.mergeSnapshot(snap)
	return nil
}

// mergeSnapshot distributes one partition image over the store's own
// shards.
func (ld *loader) mergeSnapshot(snap snapshot) {
	s := ld.s
	for _, u := range snap.Users {
		s.users[u.Nickname] = u
	}
	for _, p := range snap.Projects {
		s.shardFor(p.ID).projects[p.ID] = p
		ld.bump(&ld.maxProject, p.ID)
	}
	for _, r := range snap.Results {
		sh := s.shardFor(r.ProjectID)
		sh.results = append(sh.results, r)
		ld.bump(&ld.maxResult, r.ID)
	}
	for _, c := range snap.Comments {
		sh := s.shardFor(c.ProjectID)
		sh.comments = append(sh.comments, c)
		ld.bump(&ld.maxComment, c.ID)
	}
	for _, t := range snap.Tasks {
		s.shardFor(t.ProjectID).tasks[t.ID] = t
		ld.bump(&ld.maxTask, t.ID)
	}
	ld.bump(&ld.nextProject, snap.NextProjectID)
	ld.bump(&ld.nextResult, snap.NextResultID)
	ld.bump(&ld.nextComment, snap.NextCommentID)
	ld.bump(&ld.nextTask, snap.NextTaskID)
	ld.bump(&ld.taskTimeoutSeconds, snap.TaskTimeoutSeconds)
}

func (ld *loader) bump(dst *int, v int) {
	if v > *dst {
		*dst = v
	}
}

// replay routes one log record to the partition of the current store that
// owns it (the writing store may have had a different shard count) and
// applies it.
func (ld *loader) replay(part string, rec walRecord) error {
	s := ld.s
	if part == partMeta {
		return s.applyMeta(rec)
	}
	var sh *shard
	switch rec.Op {
	case opProject:
		var peek struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(rec.Data, &peek); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh = s.shardFor(peek.ID)
		ld.bump(&ld.maxProject, peek.ID)
	case opTaskLease:
		var ts []*Task
		if err := json.Unmarshal(rec.Data, &ts); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if len(ts) == 0 {
			return nil
		}
		// A lease batch always covers a single project.
		sh = s.shardFor(ts[0].ProjectID)
		for _, t := range ts {
			ld.bump(&ld.maxTask, t.ID)
		}
	case opTaskComplete:
		var v walTaskComplete
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if v.Result != nil {
			sh = s.shardFor(v.Result.ProjectID)
			ld.bump(&ld.maxResult, v.Result.ID)
		} else {
			sh = s.shardWithTask(v.TaskID)
		}
	case opTaskKill:
		var v walTaskKill
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh = s.shardWithTask(v.TaskID)
	case opResultHide, opResultDelete:
		var v walResultMod
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh = s.shardWithResult(v.ResultID)
	case opResult:
		var peek struct {
			ID        int `json:"id"`
			ProjectID int `json:"project_id"`
		}
		if err := json.Unmarshal(rec.Data, &peek); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh = s.shardFor(peek.ProjectID)
		ld.bump(&ld.maxResult, peek.ID)
	case opComment:
		var peek struct {
			ID        int `json:"id"`
			ProjectID int `json:"project_id"`
		}
		if err := json.Unmarshal(rec.Data, &peek); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh = s.shardFor(peek.ProjectID)
		ld.bump(&ld.maxComment, peek.ID)
	default:
		var peek struct {
			ProjectID int `json:"project_id"`
		}
		if err := json.Unmarshal(rec.Data, &peek); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh = s.shardFor(peek.ProjectID)
	}
	if sh == nil {
		return fmt.Errorf("%s record references unknown state", rec.Op)
	}
	return sh.apply(rec)
}

// shardWithResult returns the shard holding the result, or nil.
func (s *Store) shardWithResult(resultID int) *shard {
	for _, sh := range s.shards {
		for _, r := range sh.results {
			if r.ID == resultID {
				return sh
			}
		}
	}
	return nil
}

// finish installs the recovered high-water marks into the store's
// counters.
func (ld *loader) finish() {
	s := ld.s
	s.nextProjectID = ld.maxProject + 1
	if ld.nextProject > s.nextProjectID {
		s.nextProjectID = ld.nextProject
	}
	s.nextResultID.Store(int64(maxInt(ld.maxResult, ld.nextResult-1)))
	s.nextCommentID.Store(int64(maxInt(ld.maxComment, ld.nextComment-1)))
	s.nextTaskID.Store(int64(maxInt(ld.maxTask, ld.nextTask-1)))
	if ld.taskTimeoutSeconds > 0 {
		s.TaskTimeout = time.Duration(ld.taskTimeoutSeconds) * time.Second
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
