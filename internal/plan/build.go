package plan

import (
	"fmt"
	"strings"

	"sqalpel/internal/sqlparser"
)

// Build parses and plans a query against the catalog. Parse failures are
// reported as "parse error: ..." so engine-level wrapping reproduces the
// historical message format.
func Build(cat Catalog, sql string) (*Plan, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("parse error: %w", err)
	}
	return BuildStmt(cat, stmt)
}

// BuildStmt plans an already parsed statement against the catalog.
func BuildStmt(cat Catalog, stmt *sqlparser.SelectStatement) (*Plan, error) {
	b := &builder{
		cat: cat,
		p: &Plan{
			subs:       map[*sqlparser.SelectStatement]*Select{},
			correlated: map[*sqlparser.SelectStatement]bool{},
		},
	}
	root, err := b.buildChain(stmt)
	if err != nil {
		return nil, err
	}
	b.p.Root = root
	b.p.Vectorizable, b.p.NotVectorizableReason = vectorizable(stmt)
	return b.p, nil
}

// builder carries the shared state of one Build.
type builder struct {
	cat Catalog
	p   *Plan
}

// buildChain plans a statement and its set-operation continuations.
func (b *builder) buildChain(stmt *sqlparser.SelectStatement) (*Select, error) {
	head, err := b.buildSelect(stmt)
	if err != nil {
		return nil, err
	}
	cur := head
	for s := stmt; s.SetNext != nil; s = s.SetNext {
		next, err := b.buildSelect(s.SetNext)
		if err != nil {
			return nil, err
		}
		cur.SetNext = next
		cur = next
	}
	return head, nil
}

// buildSelect plans one SELECT core.
func (b *builder) buildSelect(stmt *sqlparser.SelectStatement) (*Select, error) {
	sp := &Select{Stmt: stmt}

	// Plan every sub-query reachable through the statement's expressions, so
	// the executors can look their plans (and correlation verdicts) up by
	// statement pointer instead of re-analyzing.
	if err := b.registerSubqueries(stmt); err != nil {
		return nil, err
	}

	// FROM items, resolved against the catalog.
	for _, te := range stmt.From {
		in, err := b.buildInput(te)
		if err != nil {
			return nil, err
		}
		sp.From = append(sp.From, in)
	}

	// WHERE conjuncts: fold constants, split, lift the common-OR predicates.
	where := FoldExpr(stmt.Where)
	raw := liftCommonOrConjuncts(splitAnd(where))
	sp.Conjuncts = make([]Conjunct, len(raw))
	for i, c := range raw {
		sp.Conjuncts[i] = Conjunct{Expr: c, Class: ClassResidual}
	}

	if len(sp.From) > 0 {
		b.classifyPushdowns(sp)
		b.planJoins(sp)
	}

	// Interpreter residual: every non-join conjunct in original order, with
	// sub-query-bearing predicates moved behind the cheap ones (stable).
	if len(sp.From) == 0 {
		// FROM-less SELECT: the interpreters evaluate the conjuncts as-is.
		for _, c := range sp.Conjuncts {
			sp.Residual = append(sp.Residual, c.Expr)
			sp.VexecResidual = append(sp.VexecResidual, c.Expr)
		}
	} else {
		var cheap, costly []sqlparser.Expr
		for _, c := range sp.Conjuncts {
			if c.Class == ClassJoin {
				continue
			}
			if len(sqlparser.Subqueries(c.Expr)) > 0 {
				costly = append(costly, c.Expr)
			} else {
				cheap = append(cheap, c.Expr)
			}
		}
		sp.Residual = append(cheap, costly...)

		sp.VexecPushdown = make([][]sqlparser.Expr, len(sp.From))
		for _, c := range sp.Conjuncts {
			switch c.Class {
			case ClassPushdown:
				sp.VexecPushdown[c.Input] = append(sp.VexecPushdown[c.Input], c.Expr)
			case ClassResidual:
				sp.VexecResidual = append(sp.VexecResidual, c.Expr)
			}
		}
	}

	// Joined schema in join order: From[0], then each step's right input.
	if len(sp.From) > 0 {
		sp.Schema = append(sp.Schema, sp.From[0].Schema...)
		for _, step := range sp.JoinSteps {
			sp.Schema = append(sp.Schema, sp.From[step.Right].Schema...)
		}
	}

	sp.Grouped = len(stmt.GroupBy) > 0 || statementHasAggregates(stmt)
	if !sp.Grouped && !stmt.Distinct && len(stmt.OrderBy) == 0 && stmt.Limit != nil {
		sp.EarlyLimit = int(*stmt.Limit)
		if stmt.Offset != nil {
			sp.EarlyLimit += int(*stmt.Offset)
		}
	}

	sp.Needed = b.neededColumns(stmt)
	sp.OutSchema = outSchema(stmt, sp.Schema)
	return sp, nil
}

// buildInput resolves one FROM item.
func (b *builder) buildInput(te sqlparser.TableExpr) (*Input, error) {
	switch t := te.(type) {
	case *sqlparser.TableName:
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		in := &Input{Table: t.Name, Alias: alias}
		if cols, ok := b.cat.TableColumns(t.Name); ok {
			for _, c := range cols {
				in.Schema = append(in.Schema, ColumnMeta{Table: strings.ToLower(alias), Name: strings.ToLower(c)})
			}
		}
		return in, nil
	case *sqlparser.DerivedTable:
		sub, err := b.buildChain(t.Select)
		if err != nil {
			return nil, err
		}
		in := &Input{Derived: sub, Alias: t.Alias}
		schema := append([]ColumnMeta(nil), sub.OutSchema...)
		if t.Alias != "" {
			for i := range schema {
				schema[i].Table = strings.ToLower(t.Alias)
			}
		}
		in.Schema = schema
		return in, nil
	case *sqlparser.JoinExpr:
		j, err := b.buildJoin(t)
		if err != nil {
			return nil, err
		}
		return &Input{Join: j, Schema: j.Schema}, nil
	default:
		return nil, fmt.Errorf("unsupported table expression %T", te)
	}
}

// buildJoin resolves an explicit JOIN tree node, classifying its ON
// condition into equi-join keys and residual predicates.
func (b *builder) buildJoin(j *sqlparser.JoinExpr) (*Join, error) {
	left, err := b.buildInput(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.buildInput(j.Right)
	if err != nil {
		return nil, err
	}
	kind := j.Kind
	if kind == "RIGHT" {
		// The interpreter implements RIGHT as LEFT with swapped sides; the
		// plan normalizes the same way so all executors agree on the
		// output column order.
		left, right = right, left
		kind = "LEFT"
	}
	out := &Join{Kind: kind, Left: left, Right: right}
	out.Schema = append(append([]ColumnMeta(nil), left.Schema...), right.Schema...)
	if kind == "CROSS" {
		return out, nil
	}
	conds := splitAnd(j.On)
	out.AllConds = conds
	for _, c := range conds {
		if isEquiJoinBetween(c, left.Schema, right.Schema) {
			l, r := equiJoinSides(c, left.Schema)
			out.LeftKeys = append(out.LeftKeys, l)
			out.RightKeys = append(out.RightKeys, r)
		} else {
			out.Residual = append(out.Residual, c)
		}
	}
	return out, nil
}

// classifyPushdowns marks conjuncts that resolve entirely within a single
// FROM input (the vectorized executor evaluates them below the joins; the
// result set is provably identical). Constant predicates go to input 0.
func (b *builder) classifyPushdowns(sp *Select) {
	for ci := range sp.Conjuncts {
		c := &sp.Conjuncts[ci]
		refs := sqlparser.ColumnsIn(c.Expr)
		if len(refs) == 0 {
			c.Class = ClassPushdown
			c.Input = 0
			continue
		}
		target := -1
		for ii, in := range sp.From {
			if allRefsResolve(c.Expr, in.Schema) {
				if target >= 0 {
					target = -2 // resolves in several inputs: leave residual
					break
				}
				target = ii
			}
		}
		if target >= 0 {
			c.Class = ClassPushdown
			c.Input = target
		}
	}
}

// planJoins replays the executors' greedy join-order search statically:
// starting from the first FROM input, repeatedly join the first remaining
// input connected to the accumulated schema through an equi-join conjunct;
// fall back to a cross product with the first remaining input when no edge
// exists. Consumed conjuncts become ClassJoin.
func (b *builder) planJoins(sp *Select) {
	accum := append([]ColumnMeta(nil), sp.From[0].Schema...)
	remaining := make([]int, 0, len(sp.From)-1)
	for i := 1; i < len(sp.From); i++ {
		remaining = append(remaining, i)
	}
	for len(remaining) > 0 {
		bestIdx := -1
		var edges []int
		for ri, fi := range remaining {
			var found []int
			for ci := range sp.Conjuncts {
				c := &sp.Conjuncts[ci]
				if c.Class == ClassJoin {
					continue
				}
				if isEquiJoinBetween(c.Expr, accum, sp.From[fi].Schema) {
					found = append(found, ci)
				}
			}
			if len(found) > 0 {
				bestIdx = ri
				edges = found
				break
			}
		}
		if bestIdx < 0 {
			fi := remaining[0]
			sp.JoinSteps = append(sp.JoinSteps, JoinStep{Right: fi, Cross: true})
			accum = append(accum, sp.From[fi].Schema...)
			remaining = remaining[1:]
			continue
		}
		fi := remaining[bestIdx]
		step := JoinStep{Right: fi}
		for _, ci := range edges {
			c := &sp.Conjuncts[ci]
			l, r := equiJoinSides(c.Expr, accum)
			step.LeftKeys = append(step.LeftKeys, l)
			step.RightKeys = append(step.RightKeys, r)
			c.Class = ClassJoin
		}
		sp.JoinSteps = append(sp.JoinSteps, step)
		accum = append(accum, sp.From[fi].Schema...)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
}

// registerSubqueries plans every nested SELECT reachable through the
// statement's expressions and records its correlation verdict.
func (b *builder) registerSubqueries(stmt *sqlparser.SelectStatement) error {
	var firstErr error
	register := func(s *sqlparser.SelectStatement) {
		if s == nil || b.p.subs[s] != nil {
			return
		}
		sub, err := b.buildChain(s)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		b.p.subs[s] = sub
		b.p.correlated[s] = b.analyzeCorrelation(s, map[string]bool{})
	}
	collect := func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.SubqueryExpr:
				register(v.Select)
			case *sqlparser.InExpr:
				register(v.Subquery)
			case *sqlparser.ExistsExpr:
				register(v.Subquery)
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		collect(p.Expr)
	}
	collect(stmt.Where)
	for _, g := range stmt.GroupBy {
		collect(g)
	}
	collect(stmt.Having)
	for _, o := range stmt.OrderBy {
		collect(o.Expr)
	}
	var walkTE func(te sqlparser.TableExpr)
	walkTE = func(te sqlparser.TableExpr) {
		if j, ok := te.(*sqlparser.JoinExpr); ok {
			collect(j.On)
			walkTE(j.Left)
			walkTE(j.Right)
		}
	}
	for _, te := range stmt.From {
		walkTE(te)
	}
	return firstErr
}

// --- schema resolution -------------------------------------------------------

// schemaFind resolves a possibly qualified column reference against a schema
// with the executors' ambiguity rules: unqualified lookups matching columns
// of the same name under different aliases are ambiguous.
func schemaFind(meta []ColumnMeta, table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, m := range meta {
		if m.Name != name {
			continue
		}
		if table != "" && m.Table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("column not found")
	}
	return found, nil
}

func resolvesIn(c *sqlparser.ColumnRef, meta []ColumnMeta) bool {
	_, err := schemaFind(meta, c.Table, c.Column)
	return err == nil
}

func allRefsResolve(e sqlparser.Expr, meta []ColumnMeta) bool {
	for _, c := range sqlparser.ColumnsIn(e) {
		if !resolvesIn(c, meta) {
			return false
		}
	}
	return true
}

// isEquiJoinBetween reports whether the conjunct is `a = b` with a resolving
// only in the left schema and b only in the right (or vice versa).
func isEquiJoinBetween(c sqlparser.Expr, left, right []ColumnMeta) bool {
	be, ok := c.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	lc, lok := be.Left.(*sqlparser.ColumnRef)
	rc, rok := be.Right.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return false
	}
	lInLeft, lInRight := resolvesIn(lc, left), resolvesIn(lc, right)
	rInLeft, rInRight := resolvesIn(rc, left), resolvesIn(rc, right)
	return (lInLeft && !lInRight && rInRight && !rInLeft) ||
		(rInLeft && !rInRight && lInRight && !lInLeft)
}

// equiJoinSides returns the expressions keyed on the left and right side
// respectively, assuming isEquiJoinBetween returned true.
func equiJoinSides(c sqlparser.Expr, left []ColumnMeta) (sqlparser.Expr, sqlparser.Expr) {
	be := c.(*sqlparser.BinaryExpr)
	lc := be.Left.(*sqlparser.ColumnRef)
	if resolvesIn(lc, left) {
		return be.Left, be.Right
	}
	return be.Right, be.Left
}

// --- predicate helpers -------------------------------------------------------

// splitAnd flattens a predicate into its top-level conjuncts.
func splitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sqlparser.Expr{e}
}

// splitOr flattens a predicate into its top-level disjuncts.
func splitOr(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		if v.Op == "OR" {
			return append(splitOr(v.Left), splitOr(v.Right)...)
		}
	case *sqlparser.ParenExpr:
		return splitOr(v.Expr)
	}
	return []sqlparser.Expr{e}
}

func unwrapParens(e sqlparser.Expr) sqlparser.Expr {
	for {
		p, ok := e.(*sqlparser.ParenExpr)
		if !ok {
			return e
		}
		e = p.Expr
	}
}

// liftCommonOrConjuncts lifts predicates occurring in every arm of a
// top-level OR to the top level (the TPC-H Q19 pattern), so join edges
// buried in the disjunction can still drive hash joins. The original OR is
// kept; the lifted predicates are logically implied by it.
func liftCommonOrConjuncts(conjuncts []sqlparser.Expr) []sqlparser.Expr {
	out := append([]sqlparser.Expr(nil), conjuncts...)
	for _, c := range conjuncts {
		arms := splitOr(c)
		if len(arms) < 2 {
			continue
		}
		firstArm := splitAnd(unwrapParens(arms[0]))
		common := map[string]bool{}
		for _, p := range firstArm {
			common[p.SQL()] = true
		}
		for _, arm := range arms[1:] {
			present := map[string]bool{}
			for _, p := range splitAnd(unwrapParens(arm)) {
				present[p.SQL()] = true
			}
			for k := range common {
				if !present[k] {
					delete(common, k)
				}
			}
		}
		// Emit in the first arm's syntactic order (a map range here would
		// make the plan — and the EXPLAIN plan-JSON — nondeterministic).
		for _, p := range firstArm {
			if key := p.SQL(); common[key] {
				delete(common, key)
				out = append(out, p)
			}
		}
	}
	return out
}

// statementHasAggregates reports whether the projection or HAVING uses
// aggregate functions.
func statementHasAggregates(stmt *sqlparser.SelectStatement) bool {
	for _, p := range stmt.Projection {
		if p.Expr != nil && sqlparser.HasAggregate(p.Expr) {
			return true
		}
	}
	return stmt.Having != nil && sqlparser.HasAggregate(stmt.Having)
}

// --- projection & output schema ----------------------------------------------

// outSchema computes the statement's output schema against the joined input
// schema: star items expand to the matching input columns ahead of the
// computed items, which carry an empty table tag — mirroring the
// interpreters' projection layout.
func outSchema(stmt *sqlparser.SelectStatement, input []ColumnMeta) []ColumnMeta {
	var stars []ColumnMeta
	var computed []ColumnMeta
	for _, p := range stmt.Projection {
		if p.Star {
			for _, m := range input {
				if p.Qualifier == "" || strings.EqualFold(p.Qualifier, m.Table) {
					stars = append(stars, m)
				}
			}
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = strings.ToLower(p.Expr.SQL())
			}
		}
		computed = append(computed, ColumnMeta{Table: "", Name: strings.ToLower(name)})
	}
	return append(stars, computed...)
}

// --- column pruning ----------------------------------------------------------

// neededColumns computes, per table alias, the set of column names the
// statement references anywhere (including sub-queries); the column engine
// prunes its scans to these. Unqualified references are attributed to every
// base table that has a column of that name.
func (b *builder) neededColumns(stmt *sqlparser.SelectStatement) map[string]map[string]bool {
	needed := map[string]map[string]bool{}
	add := func(alias, col string) {
		alias = strings.ToLower(alias)
		if needed[alias] == nil {
			needed[alias] = map[string]bool{}
		}
		needed[alias][strings.ToLower(col)] = true
	}

	// Alias → base table column set of this statement.
	aliases := map[string]map[string]bool{}
	var gatherAliases func(te sqlparser.TableExpr)
	gatherAliases = func(te sqlparser.TableExpr) {
		switch t := te.(type) {
		case *sqlparser.TableName:
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			var set map[string]bool
			if cols, ok := b.cat.TableColumns(t.Name); ok {
				set = map[string]bool{}
				for _, c := range cols {
					set[strings.ToLower(c)] = true
				}
			}
			aliases[strings.ToLower(alias)] = set
		case *sqlparser.JoinExpr:
			gatherAliases(t.Left)
			gatherAliases(t.Right)
		}
	}
	for _, te := range stmt.From {
		gatherAliases(te)
	}

	var refs []*sqlparser.ColumnRef
	star := false
	var collectExpr func(e sqlparser.Expr)
	var collectStmt func(s *sqlparser.SelectStatement)
	collectExpr = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.ColumnRef:
				refs = append(refs, v)
			case *sqlparser.SubqueryExpr:
				collectStmt(v.Select)
			case *sqlparser.InExpr:
				if v.Subquery != nil {
					collectStmt(v.Subquery)
				}
			case *sqlparser.ExistsExpr:
				collectStmt(v.Subquery)
			}
			return true
		})
	}
	var collectJoin func(j *sqlparser.JoinExpr)
	collectJoin = func(j *sqlparser.JoinExpr) {
		collectExpr(j.On)
		for _, side := range []sqlparser.TableExpr{j.Left, j.Right} {
			switch t := side.(type) {
			case *sqlparser.DerivedTable:
				collectStmt(t.Select)
			case *sqlparser.JoinExpr:
				collectJoin(t)
			}
		}
	}
	collectStmt = func(s *sqlparser.SelectStatement) {
		for _, p := range s.Projection {
			if p.Star {
				star = true
				continue
			}
			collectExpr(p.Expr)
		}
		collectExpr(s.Where)
		for _, g := range s.GroupBy {
			collectExpr(g)
		}
		collectExpr(s.Having)
		for _, o := range s.OrderBy {
			collectExpr(o.Expr)
		}
		for _, te := range s.From {
			switch t := te.(type) {
			case *sqlparser.DerivedTable:
				collectStmt(t.Select)
			case *sqlparser.JoinExpr:
				collectJoin(t)
			}
		}
		if s.SetNext != nil {
			collectStmt(s.SetNext)
		}
	}
	collectStmt(stmt)

	if star {
		for alias := range aliases {
			add(alias, "*")
		}
	}
	for _, r := range refs {
		if r.Table != "" {
			add(r.Table, r.Column)
			continue
		}
		for alias, cols := range aliases {
			if cols != nil && cols[strings.ToLower(r.Column)] {
				add(alias, r.Column)
			}
		}
	}
	return needed
}

// --- correlation -------------------------------------------------------------

// analyzeCorrelation walks the statement with the set of column keys
// available from enclosing FROM clauses; it returns true when any reference
// escapes — such sub-queries cannot be cached across outer rows.
func (b *builder) analyzeCorrelation(stmt *sqlparser.SelectStatement, inherited map[string]bool) bool {
	avail := map[string]bool{}
	for k := range inherited {
		avail[k] = true
	}
	var addTable func(te sqlparser.TableExpr)
	addTable = func(te sqlparser.TableExpr) {
		switch t := te.(type) {
		case *sqlparser.TableName:
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			cols, ok := b.cat.TableColumns(t.Name)
			if !ok {
				return
			}
			for _, c := range cols {
				avail[strings.ToLower(c)] = true
				avail[strings.ToLower(alias)+"."+strings.ToLower(c)] = true
			}
		case *sqlparser.DerivedTable:
			for _, p := range t.Select.Projection {
				name := p.Alias
				if name == "" {
					if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
						name = cr.Column
					}
				}
				if name != "" {
					avail[strings.ToLower(name)] = true
					if t.Alias != "" {
						avail[strings.ToLower(t.Alias)+"."+strings.ToLower(name)] = true
					}
				}
				if p.Star {
					// Approximate: expose the derived table's base columns.
					for _, te2 := range t.Select.From {
						addTable(te2)
					}
				}
			}
		case *sqlparser.JoinExpr:
			addTable(t.Left)
			addTable(t.Right)
		}
	}
	for _, te := range stmt.From {
		addTable(te)
	}

	escaped := false
	checkRef := func(r *sqlparser.ColumnRef) {
		key := strings.ToLower(r.Column)
		if r.Table != "" {
			key = strings.ToLower(r.Table) + "." + strings.ToLower(r.Column)
		}
		if !avail[key] {
			escaped = true
		}
	}
	var checkExpr func(e sqlparser.Expr)
	checkExpr = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.ColumnRef:
				checkRef(v)
			case *sqlparser.SubqueryExpr:
				if b.analyzeCorrelation(v.Select, avail) {
					escaped = true
				}
			case *sqlparser.InExpr:
				if v.Subquery != nil && b.analyzeCorrelation(v.Subquery, avail) {
					escaped = true
				}
			case *sqlparser.ExistsExpr:
				if b.analyzeCorrelation(v.Subquery, avail) {
					escaped = true
				}
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		checkExpr(p.Expr)
	}
	checkExpr(stmt.Where)
	for _, g := range stmt.GroupBy {
		checkExpr(g)
	}
	checkExpr(stmt.Having)
	for _, o := range stmt.OrderBy {
		checkExpr(o.Expr)
	}
	for _, te := range stmt.From {
		if d, ok := te.(*sqlparser.DerivedTable); ok {
			if b.analyzeCorrelation(d.Select, map[string]bool{}) {
				escaped = true
			}
		}
	}
	if stmt.SetNext != nil && b.analyzeCorrelation(stmt.SetNext, inherited) {
		escaped = true
	}
	return escaped
}

// --- vectorizable verdict ----------------------------------------------------

// vectorizable reports whether the statement is inside the vectorized
// subset, and the reason when it is not — set operations, derived tables,
// outer joins and sub-queries route to the interpreter.
func vectorizable(stmt *sqlparser.SelectStatement) (bool, string) {
	if stmt.SetNext != nil {
		return false, "set operations"
	}
	exprs := []sqlparser.Expr{stmt.Where, stmt.Having}
	for _, p := range stmt.Projection {
		exprs = append(exprs, p.Expr)
	}
	exprs = append(exprs, stmt.GroupBy...)
	for _, o := range stmt.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if len(sqlparser.Subqueries(e)) > 0 {
			return false, "sub-queries"
		}
	}
	var checkTE func(te sqlparser.TableExpr) string
	checkTE = func(te sqlparser.TableExpr) string {
		switch t := te.(type) {
		case *sqlparser.TableName:
			return ""
		case *sqlparser.DerivedTable:
			return "derived tables"
		case *sqlparser.JoinExpr:
			if t.Kind == "LEFT" || t.Kind == "RIGHT" || t.Kind == "FULL" {
				return t.Kind + " outer joins"
			}
			if t.On != nil && len(sqlparser.Subqueries(t.On)) > 0 {
				return "sub-queries"
			}
			if r := checkTE(t.Left); r != "" {
				return r
			}
			return checkTE(t.Right)
		default:
			return fmt.Sprintf("table expression %T", te)
		}
	}
	for _, te := range stmt.From {
		if r := checkTE(te); r != "" {
			return false, r
		}
	}
	return true, ""
}
