// Package metrics implements the measurement discipline of the sqalpel
// experiment driver: each query is executed a configurable number of times
// (five by default, as in the paper), the wall-clock time of every step is
// recorded, the system load is sampled at the beginning and the end of the
// run, and an open-ended key/value list carries system-specific performance
// indicators for post inspection.
//
// Measurements are cancellable: MeasureContext checks its context between
// repetitions and forwards a per-repetition deadline to targets that
// implement ContextTarget, which is how the concurrent scheduler
// (internal/sched) bounds and aborts in-flight work.
package metrics

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"sqalpel/internal/sysload"
	"sqalpel/internal/trace"
)

// DefaultRuns is the default number of repetitions per experiment.
const DefaultRuns = 5

// SimulatedDurationKey is a reserved Extra key: when a target's Run reports
// it, its value (integer nanoseconds) replaces the wall-clock time of that
// repetition and the key is consumed rather than recorded. Simulator
// targets use it to make measurements fully reproducible — the
// parallelism-determinism tests rely on it, and it lets a driver replay
// archived traces through the unchanged measurement pipeline.
const SimulatedDurationKey = "sqalpel_simulated_ns"

// Measurement is the outcome of measuring one query on one target.
type Measurement struct {
	// Runs are the wall-clock times of the individual repetitions, in the
	// order they were executed.
	Runs []time.Duration
	// Rows is the number of result rows of the last repetition.
	Rows int
	// Err holds the error message when the query failed; failed queries
	// carry no timings.
	Err string
	// LoadBefore and LoadAfter are the system load samples around the run.
	LoadBefore sysload.Load
	LoadAfter  sysload.Load
	// Extra is the open-ended key/value list of system specific indicators.
	Extra map[string]string
	// Trace is the per-operator span tree of the last repetition, decoded
	// from the target's trace.MeasurementExtraKey extra; nil when the target
	// does not trace.
	Trace *trace.QueryTrace
	// FromCache marks a measurement replayed from the scheduler's
	// result cache rather than measured fresh; its timings and trace
	// describe the original execution.
	FromCache bool
}

// Failed reports whether the measurement captured an error.
func (m *Measurement) Failed() bool { return m.Err != "" }

// Min returns the fastest repetition; zero when the measurement failed.
func (m *Measurement) Min() time.Duration {
	if len(m.Runs) == 0 {
		return 0
	}
	min := m.Runs[0]
	for _, r := range m.Runs[1:] {
		if r < min {
			min = r
		}
	}
	return min
}

// Max returns the slowest repetition.
func (m *Measurement) Max() time.Duration {
	var max time.Duration
	for _, r := range m.Runs {
		if r > max {
			max = r
		}
	}
	return max
}

// Mean returns the arithmetic mean of the repetitions.
func (m *Measurement) Mean() time.Duration {
	if len(m.Runs) == 0 {
		return 0
	}
	var total time.Duration
	for _, r := range m.Runs {
		total += r
	}
	return total / time.Duration(len(m.Runs))
}

// Median returns the median repetition time.
func (m *Measurement) Median() time.Duration {
	if len(m.Runs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), m.Runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// Stddev returns the standard deviation of the repetitions in seconds.
func (m *Measurement) Stddev() float64 {
	if len(m.Runs) < 2 {
		return 0
	}
	mean := m.Mean().Seconds()
	var sum float64
	for _, r := range m.Runs {
		d := r.Seconds() - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(m.Runs)-1))
}

// Seconds returns the per-run times in seconds, the unit used by the
// platform's result records and analytics.
func (m *Measurement) Seconds() []float64 {
	out := make([]float64, len(m.Runs))
	for i, r := range m.Runs {
		out[i] = r.Seconds()
	}
	return out
}

// String summarises the measurement.
func (m *Measurement) String() string {
	if m.Failed() {
		return "error: " + m.Err
	}
	return fmt.Sprintf("%d runs, min %.4fs, median %.4fs, max %.4fs",
		len(m.Runs), m.Min().Seconds(), m.Median().Seconds(), m.Max().Seconds())
}

// Target is anything that can execute a query and report how many rows came
// back plus optional extra indicators. The engine adapters in the core
// package implement it; remote JDBC-style targets would too.
type Target interface {
	// Run executes the query once and returns the number of result rows and
	// system-specific extras.
	Run(query string) (rows int, extra map[string]string, err error)
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(query string) (int, map[string]string, error)

// Run implements Target.
func (f TargetFunc) Run(query string) (int, map[string]string, error) { return f(query) }

// ContextTarget is a Target that honours context cancellation and deadlines
// while executing. Targets that merely implement Target are still usable
// under MeasureContext, but a repetition already in flight cannot be
// interrupted — cancellation then takes effect between repetitions.
type ContextTarget interface {
	Target
	// RunContext executes the query once, aborting when the context is
	// cancelled or its deadline passes.
	RunContext(ctx context.Context, query string) (rows int, extra map[string]string, err error)
}

// Options configure a measurement.
type Options struct {
	// Runs is the number of repetitions; zero means DefaultRuns.
	Runs int
	// WarmupRuns are executed before measuring, not recorded.
	WarmupRuns int
	// Timeout bounds a single repetition; zero means no limit. Targets that
	// implement ContextTarget are aborted mid-flight; plain targets are
	// measured to completion and the repetition is then failed post hoc.
	Timeout time.Duration
}

// Measure runs the query against the target with the configured number of
// repetitions and captures timings, load and extras.
func Measure(target Target, query string, opts Options) *Measurement {
	return MeasureContext(context.Background(), target, query, opts)
}

// MeasureContext is Measure with cancellation: the context is checked before
// every repetition, and opts.Timeout bounds each individual repetition.
func MeasureContext(ctx context.Context, target Target, query string, opts Options) *Measurement {
	runs := opts.Runs
	if runs <= 0 {
		runs = DefaultRuns
	}
	m := &Measurement{Extra: map[string]string{}, LoadBefore: sysload.Sample()}
	fail := func(err error) *Measurement {
		m.Err = err.Error()
		m.Runs = nil
		m.LoadAfter = sysload.Sample()
		return m
	}
	for i := 0; i < opts.WarmupRuns; i++ {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		if _, _, _, err := runOnce(ctx, target, query, opts.Timeout); err != nil {
			return fail(err)
		}
	}
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		rows, extra, elapsed, err := runOnce(ctx, target, query, opts.Timeout)
		if err != nil {
			return fail(err)
		}
		if v, ok := extra[SimulatedDurationKey]; ok {
			if ns, perr := strconv.ParseInt(v, 10, 64); perr == nil {
				elapsed = time.Duration(ns)
			}
		}
		m.Runs = append(m.Runs, elapsed)
		m.Rows = rows
		for k, v := range extra {
			// The simulated duration is consumed, not recorded; skipping it
			// here (instead of deleting it from the target's map) keeps
			// shared extra maps safe under concurrent measurement.
			if k == SimulatedDurationKey {
				continue
			}
			// Operator traces ride the same reserved-key channel: decoded
			// into Measurement.Trace (last repetition wins), never recorded
			// as a plain extra.
			if k == trace.MeasurementExtraKey {
				if qt, perr := trace.ParseTrace([]byte(v)); perr == nil {
					m.Trace = qt
				}
				continue
			}
			m.Extra[k] = v
		}
	}
	m.LoadAfter = sysload.Sample()
	for k, v := range m.LoadBefore.Map() {
		m.Extra["before_"+k] = v
	}
	for k, v := range m.LoadAfter.Map() {
		m.Extra["after_"+k] = v
	}
	return m
}

// runOnce executes a single repetition under the per-repetition timeout.
func runOnce(ctx context.Context, target Target, query string, timeout time.Duration) (rows int, extra map[string]string, elapsed time.Duration, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	if ct, ok := target.(ContextTarget); ok {
		rows, extra, err = ct.RunContext(ctx, query)
	} else {
		rows, extra, err = target.Run(query)
	}
	elapsed = time.Since(start)
	if err == nil && timeout > 0 && elapsed > timeout {
		err = fmt.Errorf("query exceeded the %s timeout (took %s)", timeout, elapsed.Round(time.Millisecond))
	}
	return rows, extra, elapsed, err
}
