// Package datagen generates the deterministic synthetic data sets sqalpel
// experiments run against: the TPC-H schema, the Star Schema Benchmark
// schema and an airtraffic (on-time performance) schema, each parameterised
// by a scale factor. The generators stand in for the official dbgen tools,
// which are not available offline; they reproduce the schemas, value
// domains and distributions closely enough that the workload queries touch
// the same code paths with the same relative selectivities.
package datagen

// rng is a small deterministic xorshift64* generator so data sets are
// reproducible across runs and platforms without importing math/rand.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a deterministic integer in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Float returns a deterministic float in [0, 1).
func (r *rng) Float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Range returns a deterministic integer in [lo, hi] inclusive.
func (r *rng) Range(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Pick returns a deterministic element of the slice.
func (r *rng) Pick(items []string) string {
	return items[r.Intn(len(items))]
}
