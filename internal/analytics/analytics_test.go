package analytics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// sampleRuns builds a small two-target run set with a known cost structure:
// queries containing the "sum_charge" term cost 0.5s extra on "columba",
// everything costs 0.1s on "tuplestore"; query 4 errors on columba.
func sampleRuns() []Run {
	mk := func(id int, strategy string, parent, comps int, terms []string, target string, secs float64, errMsg string) Run {
		return Run{
			QueryID: id, SQL: "SELECT q" + strings.Repeat("x", id), Strategy: strategy, ParentID: parent,
			Components: comps, Terms: terms, Target: target, Seconds: secs, Error: errMsg,
		}
	}
	charge := "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge"
	qty := "sum(l_quantity) AS sum_qty"
	flag := "l_returnflag"
	return []Run{
		mk(1, "baseline", 0, 3, []string{charge, qty, flag}, "columba", 0.62, ""),
		mk(1, "baseline", 0, 3, []string{charge, qty, flag}, "tuplestore", 0.10, ""),
		mk(2, "prune", 1, 2, []string{qty, flag}, "columba", 0.11, ""),
		mk(2, "prune", 1, 2, []string{qty, flag}, "tuplestore", 0.09, ""),
		mk(3, "alter", 2, 2, []string{charge, flag}, "columba", 0.60, ""),
		mk(3, "alter", 2, 2, []string{charge, flag}, "tuplestore", 0.10, ""),
		mk(4, "expand", 3, 3, []string{qty, flag}, "columba", 0, "parse error"),
		mk(4, "expand", 3, 3, []string{qty, flag}, "tuplestore", 0.12, ""),
	}
}

func TestHistory(t *testing.T) {
	hist := History(sampleRuns(), "columba")
	if len(hist) != 4 {
		t.Fatalf("history points = %d, want 4", len(hist))
	}
	if hist[0].QueryID != 1 || hist[3].QueryID != 4 {
		t.Error("history not in pool order")
	}
	if !hist[3].IsError {
		t.Error("query 4 should be flagged as error")
	}
	if hist[2].Strategy != "alter" || hist[2].ParentID != 2 {
		t.Errorf("morph provenance lost: %+v", hist[2])
	}
	if hist[0].Components != 3 {
		t.Errorf("node size (components) lost: %+v", hist[0])
	}
	if len(History(sampleRuns(), "unknown-target")) != 0 {
		t.Error("unknown target should yield an empty history")
	}
}

func TestComponentsFindsDominantTerm(t *testing.T) {
	comps := Components(sampleRuns(), "columba")
	if len(comps) == 0 {
		t.Fatal("no components")
	}
	if !strings.Contains(comps[0].Term, "sum_charge") {
		t.Errorf("dominant component = %q, want the sum_charge expression", comps[0].Term)
	}
	if comps[0].Delta < 0.3 {
		t.Errorf("dominant delta = %f, want around 0.5", comps[0].Delta)
	}
	// On the row store nothing stands out: every delta is small.
	for _, c := range Components(sampleRuns(), "tuplestore") {
		if c.Delta > 0.05 {
			t.Errorf("tuplestore component %q delta = %f, want ~0", c.Term, c.Delta)
		}
	}
	// Errored runs are excluded from the attribution.
	for _, c := range comps {
		if c.Queries == 0 && c.WithMean != 0 {
			t.Errorf("component %q has inconsistent stats", c.Term)
		}
	}
}

func TestSpeedup(t *testing.T) {
	sum := Speedup(sampleRuns(), "tuplestore", "columba")
	// Query 4 failed on columba, so only 3 matched pairs.
	if len(sum.Points) != 3 {
		t.Fatalf("speedup points = %d, want 3", len(sum.Points))
	}
	if sum.BaselineFactor < 5 || sum.BaselineFactor > 7 {
		t.Errorf("baseline factor = %f, want ~6.2", sum.BaselineFactor)
	}
	if sum.Min > sum.Median || sum.Median > sum.Max {
		t.Errorf("spread out of order: %f %f %f", sum.Min, sum.Median, sum.Max)
	}
	if sum.Max < 5 {
		t.Errorf("max factor = %f, want the sum_charge variants around 6", sum.Max)
	}
	if sum.Min > 2 {
		t.Errorf("min factor = %f, want the pruned variant near 1", sum.Min)
	}
	empty := Speedup(nil, "a", "b")
	if len(empty.Points) != 0 || empty.Max != 0 {
		t.Error("empty input should give an empty summary")
	}
}

func TestDiff(t *testing.T) {
	d, err := Diff(sampleRuns(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.QueryA != 1 || d.QueryB != 2 {
		t.Error("ids lost")
	}
	if len(d.OnlyA) == 0 {
		t.Error("query 1 has longer SQL, so OnlyA should not be empty")
	}
	if len(d.Times) == 0 {
		t.Error("expected per-target times")
	}
	pair := d.Times["columba"]
	if pair[0] != 0.62 || pair[1] != 0.11 {
		t.Errorf("columba times = %v", pair)
	}
	if _, err := Diff(sampleRuns(), 1, 99); err == nil {
		t.Error("diff with a missing query should fail")
	}
}

func TestTokenDiff(t *testing.T) {
	a, b := tokenDiff("SELECT n_name, n_comment FROM nation", "SELECT n_name FROM nation WHERE n_name = 'BRAZIL'")
	joinA, joinB := strings.Join(a, " "), strings.Join(b, " ")
	if !strings.Contains(joinA, "n_comment") {
		t.Errorf("onlyA = %v", a)
	}
	if !strings.Contains(joinB, "WHERE") || !strings.Contains(joinB, "'BRAZIL'") {
		t.Errorf("onlyB = %v", b)
	}
	// Identical queries have no differences.
	a, b = tokenDiff("SELECT x FROM t", "SELECT x FROM t")
	if len(a) != 0 || len(b) != 0 {
		t.Errorf("identical diff = %v / %v", a, b)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRuns()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(sampleRuns())+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(sampleRuns())+1)
	}
	if !strings.HasPrefix(lines[0], "query_id,parent_id,strategy") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "parse error") {
		t.Error("error message missing from CSV")
	}
	// Failed runs have an empty seconds field.
	for _, line := range lines[1:] {
		if strings.Contains(line, "parse error") && strings.Contains(line, "0.000000") {
			t.Error("failed run should not report a time")
		}
	}
}

func TestRunHelpers(t *testing.T) {
	r := Run{Error: "boom"}
	if !r.Failed() {
		t.Error("Failed() wrong")
	}
	if formatSeconds(math.NaN(), false) != "" {
		t.Error("NaN seconds should render empty")
	}
	if formatSeconds(1.5, false) != "1.500000" {
		t.Errorf("formatSeconds = %q", formatSeconds(1.5, false))
	}
}
